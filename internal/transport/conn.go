package transport

import (
	"fmt"
	"time"

	"repro/internal/assert"
	"repro/internal/cc"
	"repro/internal/crypto"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/wire"
)

// connState tracks the connection lifecycle (DESIGN.md §8): handshake →
// established → closing (we sent CONNECTION_CLOSE and answer stray packets
// with it) or draining (the peer closed; we go silent) → closed (terminal).
type connState int

const (
	stateHandshake connState = iota
	stateEstablished
	// stateClosing: we initiated the close. The close frame is retained
	// and re-sent (rate-limited) in response to incoming packets until the
	// drain deadline passes.
	stateClosing
	// stateDraining: the peer closed. Nothing is sent; the state exists so
	// late in-flight packets are not mistaken for a new connection.
	stateDraining
	// stateClosed is terminal: all timers cancelled, OnClosed fired.
	stateClosed
)

// String names the state for stats and debugging.
func (s connState) String() string {
	switch s {
	case stateHandshake:
		return "handshake"
	case stateEstablished:
		return "established"
	case stateClosing:
		return "closing"
	case stateDraining:
		return "draining"
	default:
		return "closed"
	}
}

// Interface describes one local network interface available to a client.
type Interface struct {
	// NetIdx is the index the DatagramSender understands.
	NetIdx int
	// Tech is the wireless technology, driving primary path selection.
	Tech trace.Technology
}

// packetMeta is the scheduler bookkeeping attached to each sent packet.
type packetMeta struct {
	chunks []chunk
	ctrl   []wire.Frame
	// reinjected marks that this packet's data was already duplicated
	// onto another path, so it is not re-injected twice.
	reinjected bool
}

// ctrlItem is a queued control frame, optionally pinned to a path.
type ctrlItem struct {
	frame wire.Frame
	// pathID pins the frame to a path (-1 = any path).
	pathID int64
	// reliable frames are re-queued when the carrying packet is lost.
	reliable bool
}

// ConnStats aggregates connection counters for experiments.
type ConnStats struct {
	SentPackets uint64
	RecvPackets uint64
	SentBytes   uint64
	RecvBytes   uint64
	// StreamBytesSent counts first transmissions of stream data.
	StreamBytesSent uint64
	// RtxBytesSent counts loss-triggered retransmissions.
	RtxBytesSent uint64
	// ReinjectedBytesSent counts re-injection duplicates — the paper's
	// cost overhead metric.
	ReinjectedBytesSent uint64
	// DuplicateBytesRecv counts received bytes already present.
	DuplicateBytesRecv uint64
	// HandshakeRTT is when the handshake completed.
	HandshakeRTT time.Duration
	// CloseErrorCode, CloseReason and CloseLocal describe how the
	// connection ended (valid once Closed() reports true). CloseLocal is
	// true when this endpoint initiated or detected the failure.
	CloseErrorCode uint64
	CloseReason    string
	CloseLocal     bool
	// KeepAlivesSent counts idle-keepalive PINGs on the primary path.
	KeepAlivesSent uint64
	// AutoAbandonedPaths counts paths dropped by the PTO give-up rule.
	AutoAbandonedPaths uint64
	// PrimaryReElections counts primary-path re-elections after the
	// previous primary was abandoned.
	PrimaryReElections uint64
	// FEC lane counters (DESIGN.md §13). Sender side: windows/repairs
	// emitted and retransmissions suppressed by peer recovery reports.
	// Receiver side: windows/repairs ingested, bytes rebuilt, give-ups.
	FECWindowsSent     uint64
	FECRepairsSent     uint64
	FECRepairBytesSent uint64
	FECWindowsRecv     uint64
	FECRepairsRecv     uint64
	FECRecoveredBytes  uint64
	FECDecoderGiveUps  uint64
	FECSuppressedBytes uint64
}

// RedundancyRatio returns re-injected bytes over all stream bytes sent, the
// paper's traffic-cost metric.
func (s ConnStats) RedundancyRatio() float64 {
	total := s.StreamBytesSent + s.RtxBytesSent + s.ReinjectedBytesSent
	if total == 0 {
		return 0
	}
	return float64(s.ReinjectedBytesSent) / float64(total)
}

// Conn is one endpoint of a multi-path connection. It is event-driven and
// must only be touched from its Env's event loop.
type Conn struct {
	env    Env
	sender DatagramSender
	cfg    Config
	rng    *sim.RNG

	// The connection is event-loop-confined: its owner (the sim harness or
	// xlink.Endpoint) serializes every entry point, so Conn itself holds no
	// locks. The mutable core below is annotated confined so xlinkvet
	// rejects any goroutine-launched path that touches it without
	// re-serializing through the owner's lock.
	state     connState // xlinkvet:guardedby confined
	multipath bool
	// fecEnabled is the negotiated FEC lane switch (both sides offered
	// enable_fec); fecEnc/fecDec are the lane's send/receive state.
	fecEnabled bool
	fecEnc     fecEncoder // xlinkvet:guardedby confined
	fecDec     fecDecoder // xlinkvet:guardedby confined

	// Handshake.
	initialDCID     wire.ConnectionID
	initTxSealer    *crypto.Sealer
	initRxSealer    *crypto.Sealer
	initSpace       *recovery.Space
	initRTT         *cc.RTTEstimator
	initLargestRecv int64
	localRandom     [32]byte
	helloPayload    []byte // our CRYPTO payload, for retransmission
	handshakeDone   bool   // peer's 1-RTT (or server initial) confirmed

	txSealer *crypto.Sealer
	rxSealer *crypto.Sealer

	localCIDs []wire.ConnectionID
	peerCIDs  []wire.ConnectionID

	interfaces []Interface
	paths      map[uint64]*Path // xlinkvet:guardedby confined
	pathOrder  []uint64         // xlinkvet:guardedby confined

	sendStreams  map[uint64]*SendStream // xlinkvet:guardedby confined
	recvStreams  map[uint64]*RecvStream // xlinkvet:guardedby confined
	nextStreamID uint64

	// Connection-level flow control.
	connSent      uint64 // sum of stream send offsets (new data)
	peerMaxData   uint64
	localMaxData  uint64
	connDelivered uint64

	ctrlQ        []ctrlItem // xlinkvet:guardedby confined
	globalReinjQ []chunk

	// QoE piggyback throttling (client).
	lastQoEAt  time.Duration
	qoeSentAny bool
	// Standalone QOE_CONTROL_SIGNALS scheduling.
	nextStandaloneQoE time.Duration
	qoeSeq            uint64

	timerCancel         func()
	inSend              bool
	secondaryTimerArmed bool

	// Hot-path scratch (DESIGN.md §11). Event-loop confined like the rest of
	// the mutable core; each buffer is valid only until the next packet is
	// assembled (send side) or delivered (recv side), so nothing below may be
	// retained across events. inRecv guards against reentrant datagram
	// delivery clobbering recvBuf/recvFrames mid-dispatch.
	sendBuf    []byte              // xlinkvet:guardedby confined
	sendFrames []wire.Frame        // xlinkvet:guardedby confined
	sfScratch  []*wire.StreamFrame // xlinkvet:guardedby confined
	sfUsed     int
	recvBuf    []byte       // xlinkvet:guardedby confined
	recvFrames []wire.Frame // xlinkvet:guardedby confined
	inRecv     bool

	// Batch I/O state (DESIGN.md §16). Send side: sendRing holds the seal
	// buffers for packets parked on per-path pending batches within one
	// maybeSend pass, batchOrder is the first-touch flush order, and
	// batching is true only inside a batched pass (SendBatchSize > 1).
	// Receive side: inBatch marks a HandleDatagramBatch in progress —
	// wakeSend is suppressed and ACK-triggered loss detection is deferred —
	// and ackDirty lists the paths owing that deferred loss pass at batch
	// end. batchCoalescedAcks counts the ACK frames whose loss detection
	// was coalesced this batch, for the ack_coalesced trace event.
	sendRing           [][]byte // xlinkvet:guardedby confined
	sendRingUsed       int
	batchOrder         []*Path // xlinkvet:guardedby confined
	batching           bool
	inBatch            bool
	ackDirty           []*Path // xlinkvet:guardedby confined
	batchCoalescedAcks int

	// Cached per-pass orderings (DESIGN.md §11): rebuilt only when their
	// dirty flag is set, instead of re-filtered and re-sorted on every send
	// pass. streamOrder is (priority, id) over sendStreams; usableBase is
	// pathOrder filtered to Usable()&&DCID!=nil.
	streamOrder      []*SendStream // xlinkvet:guardedby confined
	streamOrderDirty bool
	usableBase       []*Path // xlinkvet:guardedby confined
	pathsDirty       bool
	sendablePaths    []*Path // per-call CanSend filter scratch

	// Lifecycle hardening state (DESIGN.md §8).
	primaryID        uint64                     // current primary path ID
	lastRecvActivity time.Duration              // last successfully processed packet
	lastKeepAlive    time.Duration              // last keepalive PING queued
	drainDeadline    time.Duration              // closing/draining → closed transition
	closeFrame       *wire.ConnectionCloseFrame // retained for closing-state resends
	closeRecvCount   uint64                     // incoming packets while closing
	closedFired      bool                       // OnClosed delivered

	// tr is the structured event tracer (nil = no-op; every emit below is
	// nil-receiver-safe and free when disabled).
	tr *obs.Origin

	stats ConnStats
}

// NewConn creates a connection. Clients must AddInterface then Start;
// servers receive their first datagram via HandleDatagram.
func NewConn(env Env, sender DatagramSender, cfg Config) *Conn {
	cfg = cfg.withDefaults()
	c := &Conn{
		env:         env,
		sender:      sender,
		cfg:         cfg,
		rng:         sim.NewRNG(cfg.Seed ^ 0x5eed),
		paths:       make(map[uint64]*Path),
		sendStreams: make(map[uint64]*SendStream),
		recvStreams: make(map[uint64]*RecvStream),
		initRTT:     cc.NewRTTEstimator(),
		peerMaxData: 0,
	}
	c.initSpace = recovery.NewSpace(c.initRTT)
	c.initLargestRecv = -1
	c.localMaxData = cfg.Params.InitialMaxData
	c.tr = cfg.Tracer
	return c
}

// SetTracer installs (or clears) the structured event tracer. Call before
// traffic flows; a nil origin disables tracing at zero cost.
func (c *Conn) SetTracer(o *obs.Origin) { c.tr = o }

// Stats returns a copy of the connection counters.
func (c *Conn) Stats() ConnStats { return c.stats }

// SetOnStreamData installs the in-order stream data callback. Call before
// traffic flows.
func (c *Conn) SetOnStreamData(fn func(now time.Duration, s *RecvStream, data []byte, fin bool)) {
	c.cfg.OnStreamData = fn
}

// SetOnStreamOpen installs the peer-initiated stream callback.
func (c *Conn) SetOnStreamOpen(fn func(now time.Duration, s *RecvStream)) {
	c.cfg.OnStreamOpen = fn
}

// SetOnHandshakeDone installs the handshake-completion callback.
func (c *Conn) SetOnHandshakeDone(fn func(now time.Duration)) {
	c.cfg.OnHandshakeDone = fn
}

// SetOnClosed installs the connection-termination callback. It fires exactly
// once, when the connection leaves service for any reason: local Close, peer
// CONNECTION_CLOSE, idle timeout, or handshake failure.
func (c *Conn) SetOnClosed(fn func(now time.Duration, code uint64, reason string, local bool)) {
	c.cfg.OnClosed = fn
}

// SetQoEProvider installs the client-side QoE signal source piggybacked on
// outgoing ACK_MP frames.
func (c *Conn) SetQoEProvider(fn func() wire.QoESignal) {
	c.cfg.QoEProvider = fn
}

// SetOnQoE installs the server-side QoE feedback observer.
func (c *Conn) SetOnQoE(fn func(now time.Duration, sig wire.QoESignal)) {
	c.cfg.OnQoE = fn
}

// SetReinjectionGate installs the re-injection gate (e.g. the
// double-thresholding controller).
func (c *Conn) SetReinjectionGate(g ReinjectionGate) {
	c.cfg.ReinjectionGate = g
}

// SetReinjectionMode switches the re-injection strategy at runtime.
func (c *Conn) SetReinjectionMode(m ReinjectionMode) {
	c.cfg.ReinjectionMode = m
}

// Established reports whether the handshake has completed.
func (c *Conn) Established() bool { return c.state == stateEstablished }

// Closed reports whether the connection has left service: it is closing,
// draining, or fully terminated. Traffic no longer flows in any of these.
func (c *Conn) Closed() bool { return c.state >= stateClosing }

// Terminated reports whether the connection reached the terminal closed
// state: all timers cancelled, no further events will fire.
func (c *Conn) Terminated() bool { return c.state == stateClosed }

// StateName returns the lifecycle state for logging and tests.
func (c *Conn) StateName() string { return c.state.String() }

// PrimaryPathID returns the ID of the current primary path. It starts at 0
// and changes only when the primary is abandoned and another path is
// re-elected.
func (c *Conn) PrimaryPathID() uint64 { return c.primaryID }

// PrimaryPath returns the current primary path, or nil before Start.
func (c *Conn) PrimaryPath() *Path { return c.paths[c.primaryID] }

// MultipathEnabled reports whether multi-path was negotiated.
func (c *Conn) MultipathEnabled() bool { return c.multipath }

// IsClient reports the connection role.
func (c *Conn) IsClient() bool { return c.cfg.IsClient }

// Paths returns the paths in creation order.
func (c *Conn) Paths() []*Path {
	out := make([]*Path, 0, len(c.pathOrder))
	for _, id := range c.pathOrder {
		out = append(out, c.paths[id])
	}
	return out
}

// Path returns the path with the given ID, or nil.
func (c *Conn) Path(id uint64) *Path { return c.paths[id] }

// AddInterface registers a local interface (client side). Call before
// Start.
//
// xlinkvet:requires idle
func (c *Conn) AddInterface(netIdx int, tech trace.Technology) {
	c.interfaces = append(c.interfaces, Interface{NetIdx: netIdx, Tech: tech})
}

// newCID mints a fresh connection ID, embedding the configured server ID in
// the first byte for QUIC-LB routing.
func (c *Conn) newCID() wire.ConnectionID {
	cid := make(wire.ConnectionID, c.cfg.CIDLen)
	cid[0] = c.cfg.ServerID
	for i := 1; i < len(cid); i++ {
		cid[i] = byte(c.rng.Intn(256))
	}
	return cid
}

// newPath creates a path with the configured congestion controller.
func (c *Conn) newPath(id uint64, netIdx int, tech trace.Technology) *Path {
	p := newPath(id, netIdx, tech, c.cfg.CCAlgorithm)
	if c.cfg.CCFactory != nil {
		p.CC = c.cfg.CCFactory()
	}
	return p
}

// selectPrimaryInterface implements wireless-aware primary path selection
// (Sec 5.3): prefer the interface whose technology ranks best, unless the
// configuration pins a specific interface.
func (c *Conn) selectPrimaryInterface() Interface {
	if c.cfg.ForcePrimary {
		for _, itf := range c.interfaces {
			if itf.NetIdx == c.cfg.PrimaryNetIdx {
				return itf
			}
		}
	}
	best := c.interfaces[0]
	for _, itf := range c.interfaces[1:] {
		if itf.Tech.PrimaryPreference() < best.Tech.PrimaryPreference() {
			best = itf
		}
	}
	return best
}

// Start begins the client handshake. The primary path uses the
// wireless-aware best interface.
//
// xlinkvet:requires idle
func (c *Conn) Start() error {
	if !c.cfg.IsClient {
		return fmt.Errorf("transport: Start is client-only")
	}
	if len(c.interfaces) == 0 {
		return fmt.Errorf("transport: no interfaces")
	}
	primary := c.selectPrimaryInterface()
	p := c.newPath(0, primary.NetIdx, primary.Tech)
	p.State = PathActive // primary is validated by the handshake itself
	c.paths[0] = p
	c.pathOrder = append(c.pathOrder, 0)

	c.localCIDs = []wire.ConnectionID{c.newCID()}
	c.initialDCID = c.newCID()
	var err error
	if c.initTxSealer, err = crypto.NewSealer(c.initialDCID, "client-initial"); err != nil {
		return err
	}
	if c.initRxSealer, err = crypto.NewSealer(c.initialDCID, "server-initial"); err != nil {
		return err
	}
	for i := range c.localRandom {
		c.localRandom[i] = byte(c.rng.Intn(256))
	}
	c.helloPayload = append(append([]byte(nil), c.localRandom[:]...), c.cfg.Params.Append(nil)...)
	now := c.env.Now()
	c.lastRecvActivity = now // idle clock starts at first send
	c.tr.PathAdded(now, 0, primary.NetIdx, primary.Tech.String())
	c.sendInitial()
	c.rearmTimer()
	return nil
}

// sendInitial (re)transmits the handshake CRYPTO payload.
func (c *Conn) sendInitial() {
	now := c.env.Now()
	var payload []byte
	cf := &wire.CryptoFrame{Offset: 0, Data: c.helloPayload}
	payload = cf.Append(payload)
	pn := c.initSpace.NextPN()
	var scid wire.ConnectionID
	if len(c.localCIDs) > 0 {
		scid = c.localCIDs[0]
	}
	dcid := c.initialDCID
	if !c.cfg.IsClient && len(c.peerCIDs) > 0 {
		dcid = c.peerCIDs[0]
	}
	pkt := sealLong(c.initTxSealer, dcid, scid, pn, c.initSpace.LargestAcked(), payload)
	c.initSpace.OnPacketSent(&recovery.SentPacket{
		PN: pn, SentAt: now, Bytes: len(pkt), AckEliciting: true,
	})
	netIdx := 0
	if p := c.paths[0]; p != nil {
		netIdx = p.NetIdx
	}
	c.sender.SendDatagram(netIdx, pkt)
	c.stats.SentPackets++
	c.stats.SentBytes += uint64(len(pkt))
	c.tr.PacketSent(now, 0, pn, len(pkt), "initial")
}

// deriveSessionKeys computes 1-RTT sealers from the PSK and both randoms.
func (c *Conn) deriveSessionKeys(clientRandom, serverRandom []byte) error {
	secret := append(append(append([]byte(nil), c.cfg.PSK...), clientRandom...), serverRandom...)
	txLabel, rxLabel := "client", "server"
	if !c.cfg.IsClient {
		txLabel, rxLabel = "server", "client"
	}
	var err error
	if c.txSealer, err = crypto.NewSealer(secret, txLabel); err != nil {
		return err
	}
	if c.rxSealer, err = crypto.NewSealer(secret, rxLabel); err != nil {
		return err
	}
	return nil
}

// HandleDatagram ingests a received UDP payload that arrived on local
// interface netIdx.
//
// xlinkvet:hot
// xlinkvet:loan data
func (c *Conn) HandleDatagram(now time.Duration, netIdx int, data []byte) {
	if !c.ingestDatagram(now, netIdx, data) {
		return
	}
	c.maybeSend(now)
	c.rearmTimer()
}

// HandleDatagramBatch ingests pkts — N datagrams that arrived back-to-back
// on netIdx — with per-batch coalescing (DESIGN.md §16): the packets are
// decrypted and their frames dispatched one by one, but ACK-triggered loss
// detection runs once per touched path at batch end (OnAckNoLoss during
// the loop, one OnLossTimeout in flushAckDirty), followed by a single send
// pass and one timer re-arm, instead of N of each. A one-packet batch
// delegates to HandleDatagram, so the sim path — netem delivers exactly
// one datagram per event — behaves byte-identically to the unbatched
// transport. The slice and every packet buffer are borrowed from the I/O
// layer for the duration of the call (see DatagramSender's ownership note).
//
// xlinkvet:hot
// xlinkvet:loan pkts
func (c *Conn) HandleDatagramBatch(now time.Duration, netIdx int, pkts [][]byte) {
	if len(pkts) == 0 || c.state == stateClosed {
		return
	}
	if len(pkts) == 1 {
		c.HandleDatagram(now, netIdx, pkts[0])
		return
	}
	c.inBatch = true
	tail := false
	for _, d := range pkts {
		if c.ingestDatagram(now, netIdx, d) {
			tail = true
		}
		//xlinkvet:cold — terminal close mid-batch: not the steady-state receive path
		if c.state == stateClosed {
			break
		}
	}
	// Deferred loss detection runs while inBatch still suppresses wakeSend;
	// the single send pass below picks up everything it re-queued.
	c.flushAckDirty(now)
	c.inBatch = false
	if tail {
		c.maybeSend(now)
		c.rearmTimer()
	}
}

// ingestDatagram runs the receive half of HandleDatagram — lifecycle
// guards, stats, trace, decrypt and frame dispatch — without the trailing
// send pass and timer re-arm. It reports whether the caller owes that tail
// (false for packets absorbed in a terminal state).
//
// xlinkvet:hot
// xlinkvet:loan data
func (c *Conn) ingestDatagram(now time.Duration, netIdx int, data []byte) bool {
	if c.state == stateClosed || len(data) == 0 {
		return false
	}
	//xlinkvet:cold — draining: terminal state, not the steady-state receive path
	if c.state == stateDraining {
		// RFC 9000 §10.2.2: in draining we send nothing, but keep absorbing
		// the peer's stragglers until the drain deadline.
		c.stats.RecvPackets++
		c.stats.RecvBytes += uint64(len(data))
		c.tr.PacketReceived(now, netIdx, len(data))
		return false
	}
	//xlinkvet:cold — closing: terminal state, not the steady-state receive path
	if c.state == stateClosing {
		// §10.2.1: answer stray packets with the retained CONNECTION_CLOSE,
		// exponentially rate-limited (every 1st, 2nd, 4th, 8th... packet) so
		// a closing pair cannot ping-pong forever.
		c.stats.RecvPackets++
		c.stats.RecvBytes += uint64(len(data))
		c.tr.PacketReceived(now, netIdx, len(data))
		c.closeRecvCount++
		if c.closeRecvCount&(c.closeRecvCount-1) == 0 {
			c.resendClose(now)
		}
		return false
	}
	c.stats.RecvPackets++
	c.stats.RecvBytes += uint64(len(data))
	c.tr.PacketReceived(now, netIdx, len(data))
	//xlinkvet:cold — long-header packets are handshake-only, never steady state
	if wire.IsLongHeader(data[0]) {
		c.handleInitialDatagram(now, netIdx, data)
	} else {
		c.handleShortPacket(now, netIdx, data)
	}
	return true
}

// noteAckDirty registers p for the batch-end deferred loss-detection pass,
// deduplicating with a linear scan (connections hold a handful of paths).
//
// xlinkvet:hot
func (c *Conn) noteAckDirty(p *Path) {
	for _, q := range c.ackDirty {
		if q == p {
			return
		}
	}
	//xlinkvet:ignore hotalloc — ackDirty is per-batch scratch; capacity reaches the path count and is reused
	c.ackDirty = append(c.ackDirty, p)
}

// flushAckDirty runs the loss detection deferred by OnAckNoLoss: one pass
// per path that processed ACKs this batch, at the same now the ACKs were
// processed at, so a batch is outcome-equivalent to per-packet processing.
//
// xlinkvet:hot
func (c *Conn) flushAckDirty(now time.Duration) {
	if c.batchCoalescedAcks > 0 {
		c.tr.AckCoalesced(now, c.batchCoalescedAcks, len(c.ackDirty))
		c.batchCoalescedAcks = 0
	}
	for i, p := range c.ackDirty {
		lost := p.Space.OnLossTimeout(now)
		c.handleLost(now, p, lost, "time")
		c.ackDirty[i] = nil
	}
	c.ackDirty = c.ackDirty[:0]
}

// handleInitialDatagram processes a long-header (handshake) packet.
func (c *Conn) handleInitialDatagram(now time.Duration, netIdx int, data []byte) {
	if c.cfg.IsClient {
		c.clientHandleServerInitial(now, data)
		return
	}
	c.serverHandleClientInitial(now, netIdx, data)
}

func (c *Conn) serverHandleClientInitial(now time.Duration, netIdx int, data []byte) {
	if c.initRxSealer == nil {
		// Derive initial keys from the client's chosen DCID.
		pnOff, _, err := longPNOffset(data)
		if err != nil || pnOff < 7 {
			return
		}
		dcidLen := int(data[5])
		if 6+dcidLen > len(data) {
			return
		}
		initialDCID := wire.ConnectionID(data[6 : 6+dcidLen])
		if c.initRxSealer, err = crypto.NewSealer(initialDCID, "client-initial"); err != nil {
			return
		}
		if c.initTxSealer, err = crypto.NewSealer(initialDCID, "server-initial"); err != nil {
			return
		}
	}
	hdr, payload, _, err := openLong(c.initRxSealer, data, c.initLargestRecv)
	if err != nil {
		return
	}
	c.lastRecvActivity = now
	if int64(hdr.PacketNumber) > c.initLargestRecv {
		c.initLargestRecv = int64(hdr.PacketNumber)
	}
	frames, err := wire.ParseAll(payload)
	if err != nil {
		return
	}
	for _, f := range frames {
		cf, ok := f.(*wire.CryptoFrame)
		if !ok || len(cf.Data) < 32 {
			continue
		}
		if c.state != stateHandshake || c.handshakeDone {
			continue // duplicate hello
		}
		clientRandom := cf.Data[:32]
		peerParams, err := wire.ParseTransportParams(cf.Data[32:])
		if err != nil {
			return
		}
		c.multipath = peerParams.EnableMultipath && c.cfg.Params.EnableMultipath
		c.fecEnabled = peerParams.EnableFEC && c.cfg.Params.EnableFEC
		c.peerCIDs = []wire.ConnectionID{hdr.SCID.Clone()}
		c.localCIDs = []wire.ConnectionID{c.newCID()}
		c.peerMaxData = peerParams.InitialMaxData
		p := c.newPath(0, netIdx, trace.TechWiFi)
		p.State = PathActive
		p.DCID = c.peerCIDs[0]
		c.paths[0] = p
		c.pathOrder = append(c.pathOrder, 0)
		c.tr.PathAdded(now, 0, netIdx, trace.TechWiFi.String())
		for i := range c.localRandom {
			c.localRandom[i] = byte(c.rng.Intn(256))
		}
		if err := c.deriveSessionKeys(clientRandom, c.localRandom[:]); err != nil {
			return
		}
		c.helloPayload = append(append([]byte(nil), c.localRandom[:]...), c.cfg.Params.Append(nil)...)
		c.sendInitial()
		c.becomeEstablished(now)
		// Announce additional CIDs so the client can open paths, and
		// confirm the handshake.
		c.queueCtrl(&wire.HandshakeDoneFrame{}, -1, true)
		c.issueCIDs()
	}
}

func (c *Conn) clientHandleServerInitial(now time.Duration, data []byte) {
	hdr, payload, _, err := openLong(c.initRxSealer, data, c.initLargestRecv)
	if err != nil {
		return
	}
	c.lastRecvActivity = now
	if int64(hdr.PacketNumber) > c.initLargestRecv {
		c.initLargestRecv = int64(hdr.PacketNumber)
	}
	frames, err := wire.ParseAll(payload)
	if err != nil {
		return
	}
	for _, f := range frames {
		cf, ok := f.(*wire.CryptoFrame)
		if !ok || len(cf.Data) < 32 {
			continue
		}
		if c.state != stateHandshake {
			continue
		}
		serverRandom := cf.Data[:32]
		peerParams, err := wire.ParseTransportParams(cf.Data[32:])
		if err != nil {
			return
		}
		c.multipath = peerParams.EnableMultipath && c.cfg.Params.EnableMultipath
		c.fecEnabled = peerParams.EnableFEC && c.cfg.Params.EnableFEC
		c.peerCIDs = []wire.ConnectionID{hdr.SCID.Clone()}
		c.peerMaxData = peerParams.InitialMaxData
		c.paths[0].DCID = c.peerCIDs[0]
		if err := c.deriveSessionKeys(c.localRandom[:], serverRandom); err != nil {
			return
		}
		c.handshakeDone = true // server initial received: stop retransmitting
		c.becomeEstablished(now)
		c.issueCIDs()
		c.maybeInitSecondaryPaths(now)
	}
}

// becomeEstablished transitions to the established state once.
//
// xlinkvet:state handshake -> established
func (c *Conn) becomeEstablished(now time.Duration) {
	if c.state != stateHandshake {
		return
	}
	c.state = stateEstablished
	c.stats.HandshakeRTT = now
	if c.fecEnabled {
		c.fecInit()
	}
	c.tr.ConnStateChanged(now, stateHandshake.String(), stateEstablished.String(), 0, "")
	if c.cfg.OnHandshakeDone != nil {
		c.cfg.OnHandshakeDone(now)
	}
}

// issueCIDs provisions the peer with additional CIDs for path setup.
func (c *Conn) issueCIDs() {
	if !c.multipath {
		return
	}
	limit := int(c.cfg.Params.ActiveCIDLimit)
	if limit > 8 {
		limit = 8
	}
	for seq := len(c.localCIDs); seq < limit; seq++ {
		cid := c.newCID()
		c.localCIDs = append(c.localCIDs, cid)
		c.queueCtrl(&wire.NewConnectionIDFrame{
			Sequence:     uint64(seq),
			ConnectionID: cid,
		}, -1, true)
	}
}

// maybeInitSecondaryPaths opens a path for each remaining client interface
// once peer CIDs are available (Fig 9's path initialization).
func (c *Conn) maybeInitSecondaryPaths(now time.Duration) {
	if !c.cfg.IsClient || !c.multipath || c.state != stateEstablished {
		return
	}
	if d := c.cfg.SecondaryPathDelay; d > 0 {
		ready := c.stats.HandshakeRTT + d
		if now < ready {
			if !c.secondaryTimerArmed {
				c.secondaryTimerArmed = true
				//xlinkvet:ignore hotalloc — secondary-path timer armed at most once per connection
				c.env.Schedule(ready, func(at time.Duration) {
					c.maybeInitSecondaryPaths(at)
					c.maybeSend(at)
					c.rearmTimer()
				})
			}
			return
		}
	}
	primaryNet := c.paths[0].NetIdx
	for _, itf := range c.interfaces {
		if itf.NetIdx == primaryNet {
			continue
		}
		if c.pathForNetIdx(itf.NetIdx) != nil {
			continue
		}
		seq := uint64(len(c.pathOrder))
		if seq >= uint64(len(c.peerCIDs)) || seq >= uint64(len(c.localCIDs)) {
			continue // need more CIDs first
		}
		p := c.newPath(seq, itf.NetIdx, itf.Tech)
		p.DCID = c.peerCIDs[seq]
		c.paths[seq] = p
		c.pathOrder = append(c.pathOrder, seq)
		c.tr.PathAdded(now, seq, itf.NetIdx, itf.Tech.String())
		c.startPathValidation(now, p)
	}
}

// pathForNetIdx finds the path bound to a local interface.
func (c *Conn) pathForNetIdx(netIdx int) *Path {
	for _, id := range c.pathOrder {
		if c.paths[id].NetIdx == netIdx {
			return c.paths[id]
		}
	}
	return nil
}

// startPathValidation sends a PATH_CHALLENGE on the path.
func (c *Conn) startPathValidation(now time.Duration, p *Path) {
	for i := range p.pendingChallenge {
		p.pendingChallenge[i] = byte(c.rng.Intn(256))
	}
	p.challengeSent = true
	c.tr.PathStateChanged(now, p.ID, p.State.String(), "challenge-sent")
	//xlinkvet:ignore hotalloc — PATH_CHALLENGE is queued (outlives the call); validation runs once per path
	ch := &wire.PathChallengeFrame{Data: p.pendingChallenge}
	c.queueCtrl(ch, int64(p.ID), true)
	c.wakeSend()
}

// queueCtrl enqueues a control frame.
func (c *Conn) queueCtrl(f wire.Frame, pathID int64, reliable bool) {
	c.ctrlQ = append(c.ctrlQ, ctrlItem{frame: f, pathID: pathID, reliable: reliable})
	c.wakeSend()
}

// handleShortPacket processes a 1-RTT packet.
//
// xlinkvet:loan data
func (c *Conn) handleShortPacket(now time.Duration, netIdx int, data []byte) {
	if c.rxSealer == nil {
		return // keys not ready
	}
	if len(data) < 1+c.cfg.CIDLen {
		return
	}
	dcid := wire.ConnectionID(data[1 : 1+c.cfg.CIDLen])
	seq := c.localCIDSeq(dcid)
	if seq < 0 {
		return // not our CID
	}
	pathID := uint64(seq)
	p := c.paths[pathID]
	if p == nil {
		if !c.multipath {
			return
		}
		// New path discovered (server side): create and validate it.
		p = c.newPath(pathID, netIdx, trace.TechLTE)
		if pathID < uint64(len(c.peerCIDs)) && c.peerCIDs[pathID] != nil {
			// The matching peer CID is known: replies can flow at once.
			p.DCID = c.peerCIDs[pathID]
		}
		// Otherwise leave DCID nil; the pending NEW_CONNECTION_ID for this
		// sequence number fills it in. Replying with a mismatched CID
		// sequence would be sealed under the wrong per-path nonce.
		c.paths[pathID] = p
		c.pathOrder = append(c.pathOrder, pathID)
		c.tr.PathAdded(now, pathID, netIdx, trace.TechLTE.String())
	}
	p.NetIdx = netIdx // follow the packet (handles migration)
	// Decrypt and parse into the connection's receive scratch. A handler
	// below may synchronously trigger the peer to deliver another datagram
	// back to us (direct-delivery test harnesses); the inRecv guard makes
	// that nested delivery fall back to fresh allocations instead of
	// clobbering the buffers this frame loop is still reading.
	reentrant := c.inRecv
	var pn uint64
	var payload []byte
	var err error
	if reentrant {
		pn, payload, _, err = openShort(c.rxSealer, nil, data, c.cfg.CIDLen, uint32(pathID), p.largestRecvPN)
	} else {
		c.inRecv = true
		defer func() { c.inRecv = false }()
		var buf []byte
		pn, payload, buf, err = openShort(c.rxSealer, c.recvBuf, data, c.cfg.CIDLen, uint32(pathID), p.largestRecvPN)
		c.recvBuf = buf
	}
	if err != nil {
		return
	}
	c.lastRecvActivity = now
	if !c.handshakeDone {
		// Receiving 1-RTT confirms the peer has our keys.
		c.handshakeDone = true
	}
	var frames []wire.Frame
	if reentrant {
		frames, err = wire.ParseAll(payload)
	} else {
		frames, err = wire.AppendFrames(c.recvFrames[:0], payload)
		if frames != nil {
			c.recvFrames = frames[:0]
		}
	}
	if err != nil {
		return
	}
	eliciting := false
	for _, f := range frames {
		if wire.AckEliciting(f) {
			eliciting = true
			break
		}
	}
	dup := p.recordRecv(pn, now, eliciting)
	c.unsuspectPath(now, p) // receiving on the path proves it alive
	if dup {
		return
	}
	p.RecvPackets++
	p.RecvBytes += uint64(len(data))
	for _, f := range frames {
		c.handleFrame(now, p, f)
		if c.state >= stateClosing {
			return // a CONNECTION_CLOSE ended the connection mid-packet
		}
	}
}

// localCIDSeq resolves one of our CIDs to its sequence number, -1 if
// unknown.
func (c *Conn) localCIDSeq(cid wire.ConnectionID) int {
	for i, lc := range c.localCIDs {
		if lc.Equal(cid) {
			return i
		}
	}
	return -1
}

// handleFrame dispatches one received frame on path p.
func (c *Conn) handleFrame(now time.Duration, p *Path, f wire.Frame) {
	switch fr := f.(type) {
	case *wire.PaddingFrame, *wire.PingFrame:
		// Nothing beyond ack-eliciting bookkeeping.
	case *wire.HandshakeDoneFrame:
		c.handshakeDone = true
		c.maybeInitSecondaryPaths(now)
	case *wire.NewConnectionIDFrame:
		for uint64(len(c.peerCIDs)) <= fr.Sequence {
			c.peerCIDs = append(c.peerCIDs, nil)
		}
		c.peerCIDs[fr.Sequence] = fr.ConnectionID.Clone()
		if pp := c.paths[fr.Sequence]; pp != nil && pp.DCID == nil {
			pp.DCID = c.peerCIDs[fr.Sequence]
		}
		c.maybeInitSecondaryPaths(now)
	case *wire.RetireConnectionIDFrame:
		// CID rotation is out of scope; accept silently.
	case *wire.PathChallengeFrame:
		// Respond on the same path, as required for validation.
		//xlinkvet:ignore hotalloc — PATH_RESPONSE is queued (outlives the call); challenges arrive once per validation
		c.queueCtrl(&wire.PathResponseFrame{Data: fr.Data}, int64(p.ID), false)
		if !p.validatedPeer && !p.challengeSent {
			// Validate the reverse direction too.
			c.startPathValidation(now, p)
		}
	case *wire.PathResponseFrame:
		if p.challengeSent && fr.Data == p.pendingChallenge {
			p.validatedPeer = true
			if p.State == PathProbing {
				p.State = PathActive
			}
			c.tr.PathValidated(now, p.ID)
			c.wakeSend()
		}
	case *wire.PathStatusFrame:
		c.handlePathStatus(now, fr)
	case *wire.AckFrame:
		c.processAck(now, c.paths[0], fr.Ranges, fr.AckDelay)
	case *wire.AckMPFrame:
		target := c.paths[fr.PathID]
		if target == nil {
			return
		}
		c.processAck(now, target, fr.Ranges, fr.AckDelay)
		if fr.HasQoE && c.cfg.OnQoE != nil {
			assert.NonNegDur(fr.QoE.PlaytimeLeft(), "qoe Δt")
			c.tr.QoESignal(now, fr.QoE.CachedBytes, fr.QoE.CachedFrames)
			c.cfg.OnQoE(now, fr.QoE)
		}
	case *wire.QoEControlSignalsFrame:
		if c.cfg.OnQoE != nil {
			assert.NonNegDur(fr.QoE.PlaytimeLeft(), "qoe Δt")
			c.tr.QoESignal(now, fr.QoE.CachedBytes, fr.QoE.CachedFrames)
			c.cfg.OnQoE(now, fr.QoE)
		}
	case *wire.StreamFrame:
		c.handleStreamFrame(now, fr)
	case *wire.MaxDataFrame:
		if fr.MaxData > c.peerMaxData {
			c.peerMaxData = fr.MaxData
			c.wakeSend()
		}
	case *wire.MaxStreamDataFrame:
		if s := c.sendStreams[fr.StreamID]; s != nil && fr.MaxStreamData > s.peerMaxData {
			s.peerMaxData = fr.MaxStreamData
			c.wakeSend()
		}
	case *wire.DataBlockedFrame, *wire.StreamDataBlockedFrame:
		// Informational; our auto-tuned limits react via MAX_DATA below.
	case *wire.ResetStreamFrame:
		if rs := c.recvStreams[fr.StreamID]; rs != nil {
			rs.finished = true
		}
	case *wire.StopSendingFrame:
		// The peer no longer wants this stream: abort our sending side
		// with RESET_STREAM, as RFC 9000 §3.5 requires.
		if s := c.sendStreams[fr.StreamID]; s != nil {
			s.Reset(fr.ErrorCode)
		}
	case *wire.ConnectionCloseFrame:
		c.enterDraining(now, fr.ErrorCode, fr.Reason)
	case *wire.FECWindowFrame:
		c.handleFECWindow(now, fr)
	case *wire.FECRepairFrame:
		c.handleFECRepair(now, fr)
	case *wire.FECRecoveredFrame:
		c.handleFECRecovered(now, fr)
	case *wire.CryptoFrame:
		// CRYPTO in 1-RTT unused in the simplified handshake.
	}
}

// unsuspectPath clears a path's suspicion and, if we had advertised it as
// standby, tells the peer it is available again.
func (c *Conn) unsuspectPath(now time.Duration, p *Path) {
	p.suspect = false
	if p.advertisedStandby && p.State == PathActive {
		p.advertisedStandby = false
		p.lastStatusSeq++
		c.tr.PathStateChanged(now, p.ID, p.State.String(), "recovered")
		//xlinkvet:ignore hotalloc — PATH_STATUS is queued (outlives the call); path recovery is rare
		c.queueCtrl(&wire.PathStatusFrame{
			PathID: p.ID, StatusSeq: p.lastStatusSeq, Status: wire.PathAvailable,
		}, -1, false)
	}
}

// handlePathStatus applies a peer path-status update (Sec 6, "Path close").
func (c *Conn) handlePathStatus(now time.Duration, fr *wire.PathStatusFrame) {
	p := c.paths[fr.PathID]
	if p == nil || fr.StatusSeq <= p.lastStatusSeq {
		return
	}
	p.lastStatusSeq = fr.StatusSeq
	switch fr.Status {
	case wire.PathAbandon:
		p.State = PathClosed
		c.tr.PathAbandoned(now, p.ID, "peer-abandon")
		c.evacuatePath(now, p)
	case wire.PathStandby:
		if p.State == PathActive {
			p.State = PathStandbyLocal
			c.tr.PathStateChanged(now, p.ID, p.State.String(), "peer-standby")
			c.evacuatePath(now, p)
		}
	case wire.PathAvailable:
		if p.State == PathStandbyLocal || p.State == PathProbing {
			p.State = PathActive
			c.tr.PathStateChanged(now, p.ID, p.State.String(), "peer-available")
		}
	}
}

// handleStreamFrame ingests stream data and delivers in-order bytes. When
// the FEC lane is live, newly arrived data re-examines the stream's open
// protection windows: a window may retire (fully received) or become
// solvable (missing count dropped to the repairs in hand).
func (c *Conn) handleStreamFrame(now time.Duration, fr *wire.StreamFrame) {
	rs := c.streamForRecv(now, fr.StreamID)
	c.deliverStreamData(now, rs, fr.Offset, fr.Data, fr.Fin)
	if c.fecEnabled && c.fecDec.hasOpenWindows(fr.StreamID) {
		c.fecOnStreamData(now, fr.StreamID)
	}
}

// streamForRecv returns the receive half of a stream, creating it (and
// announcing it to the application) on first contact.
//
// xlinkvet:hot
func (c *Conn) streamForRecv(now time.Duration, id uint64) *RecvStream {
	rs := c.recvStreams[id]
	if rs == nil {
		//xlinkvet:ignore hotalloc — one RecvStream per stream lifetime, retained in recvStreams
		rs = &RecvStream{
			id:          id,
			conn:        c,
			initialMax:  c.cfg.Params.InitialMaxStrData,
			maxDataSent: c.cfg.Params.InitialMaxStrData,
		}
		c.recvStreams[id] = rs
		if c.cfg.OnStreamOpen != nil {
			c.cfg.OnStreamOpen(now, rs)
		}
	}
	return rs
}

// deliverStreamData feeds payload bytes — received or FEC-recovered — into
// the stream's reassembly and runs the shared delivery and flow-control
// tail. Both recovery lanes converge here, so recovered bytes are
// indistinguishable from received ones downstream.
//
// xlinkvet:hot
// xlinkvet:loan payload
func (c *Conn) deliverStreamData(now time.Duration, rs *RecvStream, offset uint64, payload []byte, fin bool) {
	beforeDup := rs.DuplicateBytes
	data, finished := rs.onFrame(offset, payload, fin)
	c.stats.DuplicateBytesRecv += rs.DuplicateBytes - beforeDup
	if len(data) > 0 {
		c.connDelivered += uint64(len(data))
	}
	if (len(data) > 0 || finished) && c.cfg.OnStreamData != nil {
		c.cfg.OnStreamData(now, rs, data, finished)
	}
	// Flow control updates.
	if rs.needsMaxDataUpdate() {
		//xlinkvet:ignore hotalloc — flow-control frame is queued (outlives the call); amortized to one per half-window delivered
		c.queueCtrl(&wire.MaxStreamDataFrame{StreamID: rs.id, MaxStreamData: rs.nextMaxData()}, -1, true)
	}
	if c.connDelivered > c.localMaxData-min64(c.localMaxData, c.cfg.Params.InitialMaxData/2) {
		c.localMaxData = c.connDelivered + c.cfg.Params.InitialMaxData
		//xlinkvet:ignore hotalloc — flow-control frame is queued (outlives the call); amortized to one per half-window delivered
		c.queueCtrl(&wire.MaxDataFrame{MaxData: c.localMaxData}, -1, true)
	}
}

// processAck applies an ACK to the target path's space. Inside a receive
// batch, loss detection is deferred to flushAckDirty at batch end; the rest
// of the ACK reaction (RTT, CC, chunk bookkeeping) is identical.
func (c *Conn) processAck(now time.Duration, target *Path, ranges []wire.AckRange, delay time.Duration) {
	if target == nil {
		return
	}
	var res recovery.AckResult
	if c.inBatch {
		res = target.Space.OnAckNoLoss(ranges, delay, now)
		c.noteAckDirty(target)
		c.batchCoalescedAcks++
	} else {
		res = target.Space.OnAck(ranges, delay, now)
	}
	if len(res.Acked) > 0 {
		// Acked delivery proves the path works in the send direction.
		c.unsuspectPath(now, target)
		target.lastAckAt = now
	}
	for _, sp := range res.Acked {
		c.tr.PacketAcked(now, target.ID, sp.PN)
		if sp.AckEliciting {
			target.CC.OnPacketAcked(now, sp.Bytes, target.RTT.Smoothed())
		}
		if meta, ok := sp.Meta.(*packetMeta); ok {
			for _, ch := range meta.chunks {
				if s := c.sendStreams[ch.streamID]; s != nil {
					s.onChunkAcked(ch)
				}
			}
		}
	}
	if len(res.Acked) > 0 {
		c.tr.MetricsUpdated(now, target.ID, target.CC.Window(),
			target.CC.BytesInFlight(), target.CC.InSlowStart(), target.RTT.Smoothed())
	}
	c.handleLost(now, target, res.Lost, "time")
	if len(res.Acked) > 0 {
		c.wakeSend()
	}
}

// handleLost reacts to packets declared lost on a path. fallbackTrigger
// attributes bulk declarations (DeclareAllLost leaves SentPacket.LostTrigger
// empty) in the trace: "pto" or "evacuated".
func (c *Conn) handleLost(now time.Duration, p *Path, lost []*recovery.SentPacket, fallbackTrigger string) {
	for _, sp := range lost {
		trigger := sp.LostTrigger
		if trigger == "" {
			trigger = fallbackTrigger
		}
		c.tr.PacketLost(now, p.ID, sp.PN, sp.Bytes, trigger)
		p.LostPackets++
		if sp.AckEliciting {
			p.CC.OnPacketLost(now, sp.SentAt, sp.Bytes)
		}
		meta, ok := sp.Meta.(*packetMeta)
		if !ok {
			continue
		}
		for _, ch := range meta.chunks {
			if s := c.sendStreams[ch.streamID]; s != nil {
				s.onChunkLost(ch)
			}
		}
		for _, f := range meta.ctrl {
			pathID := int64(-1)
			switch f.(type) {
			case *wire.PathChallengeFrame, *wire.PathResponseFrame:
				// Validation frames only make sense on their own path.
				pathID = int64(p.ID)
			}
			c.ctrlQ = append(c.ctrlQ, ctrlItem{frame: f, pathID: pathID, reliable: true})
		}
	}
	if len(lost) > 0 {
		c.tr.MetricsUpdated(now, p.ID, p.CC.Window(),
			p.CC.BytesInFlight(), p.CC.InSlowStart(), p.RTT.Smoothed())
		c.wakeSend()
	}
}

// evacuatePath reschedules everything stranded on a failed or demoted path
// onto the surviving paths: all unacked packets are declared lost, their
// stream data re-queued for retransmission, and the congestion state
// cleared (the MPTCP-style failover re-injection the paper builds on).
func (c *Conn) evacuatePath(now time.Duration, p *Path) {
	lost := p.Space.DeclareAllLost(now)
	c.handleLost(now, p, lost, "evacuated")
	p.CC.Reset()
}

// OpenStream creates a new locally initiated stream.
//
// xlinkvet:requires established
func (c *Conn) OpenStream() *SendStream {
	id := c.nextStreamID
	c.nextStreamID += 4
	return c.Stream(id)
}

// Stream returns the send half for a stream ID, creating it if needed
// (servers respond on the client's stream IDs this way).
//
// xlinkvet:requires established
func (c *Conn) Stream(id uint64) *SendStream {
	if s := c.sendStreams[id]; s != nil {
		return s
	}
	s := &SendStream{
		id:          id,
		conn:        c,
		prio:        int(id),
		peerMaxData: c.cfg.Params.InitialMaxStrData,
	}
	if c.state == stateEstablished {
		// Use the peer's advertised default once known.
		s.peerMaxData = c.peerStreamLimit()
	}
	c.sendStreams[id] = s
	c.streamOrderDirty = true
	return s
}

// peerStreamLimit returns the default per-stream limit learned in the
// handshake, falling back to our own default.
func (c *Conn) peerStreamLimit() uint64 {
	// The simplified handshake shares InitialMaxStrData via params; the
	// value was folded into peerMaxData bookkeeping at stream creation.
	return c.cfg.Params.InitialMaxStrData
}

// RecvStreamFor returns the receive half of a stream if it exists.
func (c *Conn) RecvStreamFor(id uint64) *RecvStream { return c.recvStreams[id] }

// StopSending asks the peer to stop sending on a stream — how a short-video
// client abandons chunks when the viewer swipes away.
//
// xlinkvet:requires established
func (c *Conn) StopSending(id uint64, code uint64) {
	rs := c.recvStreams[id]
	if rs != nil && rs.finished {
		return
	}
	c.queueCtrl(&wire.StopSendingFrame{StreamID: id, ErrorCode: code}, -1, true)
	if rs != nil {
		rs.finished = true // stop delivering further data to the app
	}
}

// AbandonPath closes a path explicitly (Sec 6, "Path close"): the peer is
// told via PATH_STATUS(abandon), stranded data is rescheduled onto the
// remaining paths, and local resources are released. Used when the
// application knows an interface went away (Wi-Fi turned off, signal
// fading below threshold).
//
// xlinkvet:requires established
func (c *Conn) AbandonPath(id uint64) {
	p := c.paths[id]
	if p == nil || p.State == PathClosed {
		return
	}
	now := c.env.Now()
	p.lastStatusSeq++
	c.queueCtrl(&wire.PathStatusFrame{
		PathID: id, StatusSeq: p.lastStatusSeq, Status: wire.PathAbandon,
	}, -1, true)
	p.State = PathClosed
	c.tr.PathAbandoned(now, id, "local-abandon")
	c.evacuatePath(now, p)
	if id == c.primaryID {
		c.reelectPrimary(now)
	}
	c.wakeSend()
	c.rearmTimer()
}

// reelectPrimary promotes another path to primary after the old primary was
// abandoned: prefer usable paths by wireless technology rank then smoothed
// RTT, falling back to any non-closed path. Keepalives and close frames
// follow the new primary.
func (c *Conn) reelectPrimary(now time.Duration) {
	var best *Path
	better := func(cand, cur *Path) bool {
		if cur == nil {
			return true
		}
		candUse, curUse := cand.Usable(), cur.Usable()
		if candUse != curUse {
			return candUse
		}
		if a, b := cand.Tech.PrimaryPreference(), cur.Tech.PrimaryPreference(); a != b {
			return a < b
		}
		return cand.RTT.Smoothed() < cur.RTT.Smoothed()
	}
	for _, id := range c.pathOrder {
		p := c.paths[id]
		if p.State == PathClosed || id == c.primaryID {
			continue
		}
		if better(p, best) {
			best = p
		}
	}
	if best == nil {
		return // no survivor; the idle timeout will end the connection
	}
	c.tr.PrimaryChanged(now, c.primaryID, best.ID)
	c.primaryID = best.ID
	c.stats.PrimaryReElections++
}

// anotherUsablePath reports whether a usable path other than p exists — the
// precondition for giving up on p entirely.
func (c *Conn) anotherUsablePath(p *Path) bool {
	for _, id := range c.pathOrder {
		q := c.paths[id]
		if q != p && q.State != PathClosed && q.Usable() {
			return true
		}
	}
	return false
}

// MigratePrimary implements QUIC connection migration (CM baseline): the
// primary path moves to another local interface. Congestion window and RTT
// state are reset, forcing a fresh slow start — the cost the paper
// highlights for CM (Sec 2, "CM requires resetting the congestion window
// after migration"). In-flight data is evacuated for retransmission.
// xlinkvet:requires established
func (c *Conn) MigratePrimary(netIdx int, tech trace.Technology) {
	p := c.paths[0]
	if p == nil || p.NetIdx == netIdx {
		return
	}
	now := c.env.Now()
	p.NetIdx = netIdx
	p.Tech = tech
	c.tr.PathStateChanged(now, p.ID, p.State.String(), "migrated")
	c.evacuatePath(now, p)
	p.RTT.Reset()
	p.suspect = false
	// Announce the migration: the peer learns the new address from the
	// first packet it receives on it (and its loss recovery restarts from
	// the ack this elicits).
	c.queueCtrl(&wire.PingFrame{}, int64(p.ID), false)
	c.wakeSend()
	c.rearmTimer()
}

// Close terminates the connection, notifying the peer with CONNECTION_CLOSE
// on every path that can carry it, then enters the closing state (RFC 9000
// §10.2.1): the frame is retained and re-sent in response to stray peer
// packets until 3×PTO elapses, when the connection becomes terminal.
func (c *Conn) Close(code uint64, reason string) {
	if c.state >= stateClosing {
		return
	}
	if c.txSealer == nil {
		// Mid-handshake: no 1-RTT keys to seal a close with. Terminate
		// immediately and silently.
		c.closeSilently(c.env.Now(), code, reason)
		return
	}
	c.closeFrame = &wire.ConnectionCloseFrame{ErrorCode: code, Reason: reason}
	now := c.env.Now()
	c.resendClose(now)
	c.enterClosing(now, code, reason)
}

// resendClose transmits the retained CONNECTION_CLOSE on every path that has
// a usable destination CID — not just active paths, so a close issued during
// a blackout still reaches the peer if any address works.
func (c *Conn) resendClose(now time.Duration) {
	if c.closeFrame == nil || c.txSealer == nil {
		return
	}
	payload := c.closeFrame.Append(nil)
	for _, id := range c.pathOrder {
		p := c.paths[id]
		if p.State == PathClosed || p.DCID == nil {
			continue
		}
		pn := p.Space.NextPN()
		pkt := sealShort(c.txSealer, p.DCID, uint32(p.ID), pn, p.Space.LargestAcked(), payload)
		c.sender.SendDatagram(p.NetIdx, pkt)
		c.stats.SentPackets++
		c.stats.SentBytes += uint64(len(pkt))
		c.tr.PacketSent(now, p.ID, pn, len(pkt), "close")
	}
}

// maxPathPTO returns the largest PTO interval across paths, the unit of the
// §10.2 drain period.
func (c *Conn) maxPathPTO() time.Duration {
	max := c.initRTT.PTO()
	for _, id := range c.pathOrder {
		if pto := c.paths[id].RTT.PTO(); pto > max {
			max = pto
		}
	}
	return max
}

// recordClose stamps the close outcome into stats and fires OnClosed once.
func (c *Conn) recordClose(now time.Duration, code uint64, reason string, local bool) {
	if c.closedFired {
		return
	}
	c.closedFired = true
	c.stats.CloseErrorCode = code
	c.stats.CloseReason = reason
	c.stats.CloseLocal = local
	if code != 0 {
		// Error closes are the post-mortems the flight recorder exists
		// for: snapshot the last-N events before the state is torn down.
		c.tr.Anomaly(now, "error_close")
	}
	if c.cfg.OnClosed != nil {
		c.cfg.OnClosed(now, code, reason, local)
	}
}

// enterClosing starts the local-close drain period.
//
// xlinkvet:state handshake,established -> closing
func (c *Conn) enterClosing(now time.Duration, code uint64, reason string) {
	old := c.state
	c.state = stateClosing
	c.drainDeadline = now + 3*c.maxPathPTO()
	c.tr.ConnStateChanged(now, old.String(), c.state.String(), code, reason)
	c.recordClose(now, code, reason, true)
	c.rearmTimer()
}

// enterDraining reacts to a peer CONNECTION_CLOSE: go silent, wait out the
// drain period so late packets are absorbed, then terminate.
//
// xlinkvet:state handshake,established -> draining
func (c *Conn) enterDraining(now time.Duration, code uint64, reason string) {
	if c.state >= stateClosing {
		return
	}
	old := c.state
	c.state = stateDraining
	c.drainDeadline = now + 3*c.maxPathPTO()
	c.tr.ConnStateChanged(now, old.String(), c.state.String(), code, reason)
	c.recordClose(now, code, reason, false)
	c.rearmTimer()
}

// closeSilently terminates without notifying the peer — idle timeout
// (RFC 9000 §10.1) and handshake failure, where no send is possible or
// useful.
//
// xlinkvet:state idle,handshake,established -> closed
func (c *Conn) closeSilently(now time.Duration, code uint64, reason string) {
	if c.state == stateClosed {
		return
	}
	c.recordClose(now, code, reason, true)
	c.enterTerminal(now)
}

// enterTerminal moves to the terminal closed state and cancels all timers,
// quiescing the event loop.
//
// xlinkvet:state closing,draining -> closed
func (c *Conn) enterTerminal(now time.Duration) {
	old := c.state
	c.state = stateClosed
	c.tr.ConnStateChanged(now, old.String(), c.state.String(),
		c.stats.CloseErrorCode, c.stats.CloseReason)
	c.cancelTimer()
}
