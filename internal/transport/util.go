package transport

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
