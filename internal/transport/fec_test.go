package transport

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/assert"
	"repro/internal/sim"
	"repro/internal/wire"
)

// --- GF(256) / code algebra ---------------------------------------------

func TestGFFieldProperties(t *testing.T) {
	// Multiplicative identity and annihilator.
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("gfMul(%d,1) != %d", a, a)
		}
		if gfMul(byte(a), 0) != 0 {
			t.Fatalf("gfMul(%d,0) != 0", a)
		}
	}
	// Inverses: a * a^-1 == 1 for every nonzero element.
	for a := 1; a < 256; a++ {
		if got := gfMul(byte(a), gfInv(byte(a))); got != 1 {
			t.Fatalf("a*inv(a) = %d for a=%d", got, a)
		}
	}
	// Commutativity and associativity, exhaustive pairs + sampled triples.
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if gfMul(byte(a), byte(b)) != gfMul(byte(b), byte(a)) {
				t.Fatalf("gfMul not commutative at %d,%d", a, b)
			}
		}
	}
	rng := sim.NewRNG(1).Fork("gf")
	for n := 0; n < 10000; n++ {
		a, b, c := byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))
		if gfMul(gfMul(a, b), c) != gfMul(a, gfMul(b, c)) {
			t.Fatalf("gfMul not associative at %d,%d,%d", a, b, c)
		}
		// Distributivity over XOR (the field addition).
		if gfMul(a, b^c) != gfMul(a, b)^gfMul(a, c) {
			t.Fatalf("gfMul not distributive at %d,%d,%d", a, b, c)
		}
	}
}

// TestFECCoeffInvertible checks the MDS property the decoder relies on:
// every square submatrix of the Cauchy coefficient matrix (rows = repair
// symbols, columns = missing source symbols) is invertible, so any m losses
// are recoverable from any m received repairs.
func TestFECCoeffInvertible(t *testing.T) {
	for j := 0; j < wire.MaxFECRepairSymbols; j++ {
		for i := 0; i < wire.MaxFECSourceSymbols; i++ {
			if fecCoeff(wire.FECSchemeRS, j, i) == 0 {
				t.Fatalf("zero coefficient at repair %d source %d", j, i)
			}
		}
	}
	rng := sim.NewRNG(2).Fork("cauchy")
	invertible := func(rows, cols []int) bool {
		m := len(rows)
		var mat [wire.MaxFECRepairSymbols][wire.MaxFECRepairSymbols]byte
		for r := 0; r < m; r++ {
			for c := 0; c < m; c++ {
				mat[r][c] = fecCoeff(wire.FECSchemeRS, rows[r], cols[c])
			}
		}
		for col := 0; col < m; col++ {
			piv := -1
			for r := col; r < m; r++ {
				if mat[r][col] != 0 {
					piv = r
					break
				}
			}
			if piv < 0 {
				return false
			}
			mat[piv], mat[col] = mat[col], mat[piv]
			inv := gfInv(mat[col][col])
			for c := col; c < m; c++ {
				mat[col][c] = gfMul(mat[col][c], inv)
			}
			for r := 0; r < m; r++ {
				if r == col || mat[r][col] == 0 {
					continue
				}
				f := mat[r][col]
				for c := col; c < m; c++ {
					mat[r][c] ^= gfMul(f, mat[col][c])
				}
			}
		}
		return true
	}
	pick := func(n, k int) []int {
		out := make([]int, 0, k)
		for len(out) < k {
			v := rng.Intn(n)
			dup := false
			for _, o := range out {
				if o == v {
					dup = true
				}
			}
			if !dup {
				out = append(out, v)
			}
		}
		return out
	}
	for m := 1; m <= wire.MaxFECRepairSymbols; m++ {
		for trial := 0; trial < 50; trial++ {
			rows := pick(wire.MaxFECRepairSymbols, m)
			cols := pick(wire.MaxFECSourceSymbols, m)
			if !invertible(rows, cols) {
				t.Fatalf("singular %dx%d submatrix rows=%v cols=%v", m, m, rows, cols)
			}
		}
	}
}

// --- decoder unit tests (direct frame injection) ------------------------

// fecPair establishes a two-path connection pair with FEC negotiated.
func fecPair(t *testing.T, seed int64) *Pair {
	t.Helper()
	loop := sim.NewLoop()
	ccfg, scfg := defaultMPConfig()
	ccfg.Params.EnableFEC = true
	scfg.Params.EnableFEC = true
	pair := NewPair(loop, sim.NewRNG(seed), TwoPathConfig(20, 20, 10*time.Millisecond, 30*time.Millisecond), ccfg, scfg)
	if err := pair.Start(); err != nil {
		t.Fatal(err)
	}
	pair.RunUntil(2 * time.Second)
	if !pair.Client.Established() || !pair.Server.Established() {
		t.Fatal("handshake did not complete")
	}
	if !pair.Client.fecEnabled || !pair.Server.fecEnabled {
		t.Fatal("FEC not negotiated")
	}
	return pair
}

// fecRepairFor computes repair symbol j over the window's source symbols.
func fecRepairFor(scheme uint64, j, symSize int, data []byte) []byte {
	out := make([]byte, symSize)
	k := (len(data) + symSize - 1) / symSize
	for i := 0; i < k; i++ {
		end := (i + 1) * symSize
		if end > len(data) {
			end = len(data)
		}
		fecMulAddInto(out, data[i*symSize:end], fecCoeff(scheme, j, i))
	}
	return out
}

func TestFECXORRecoversSingleLoss(t *testing.T) {
	pair := fecPair(t, 9)
	col := newCollector()
	pair.Client.cfg.OnStreamData = col.onData
	now := 2 * time.Second

	const symSize, k, streamID = 32, 4, 8
	data := make([]byte, symSize*k)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}
	// Deliver every symbol except #2 through the stream lane.
	for i := 0; i < k; i++ {
		if i == 2 {
			continue
		}
		pair.Client.handleStreamFrame(now, &wire.StreamFrame{
			StreamID: streamID,
			Offset:   uint64(i * symSize),
			Data:     data[i*symSize : (i+1)*symSize],
		})
	}
	pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
		WindowID: 1, StreamID: streamID, BaseOffset: 0,
		DataLen: uint64(len(data)), SymbolSize: symSize,
		Scheme: wire.FECSchemeXOR, Repairs: 1,
	})
	pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
		WindowID: 1, Index: 0, Data: fecRepairFor(wire.FECSchemeXOR, 0, symSize, data),
	})

	st := pair.Client.Stats()
	if st.FECRecoveredBytes != symSize {
		t.Fatalf("FECRecoveredBytes = %d, want %d", st.FECRecoveredBytes, symSize)
	}
	if buf := col.data[streamID]; buf == nil || !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("recovered stream data does not match the original")
	}
	if st.FECDecoderGiveUps != 0 {
		t.Fatalf("unexpected give-ups: %d", st.FECDecoderGiveUps)
	}
}

func TestFECRSRecoversTwoLosses(t *testing.T) {
	pair := fecPair(t, 10)
	col := newCollector()
	pair.Client.cfg.OnStreamData = col.onData
	now := 2 * time.Second

	// Short tail: dataLen is not a symbol multiple, and the two missing
	// symbols include the short last one. Repairs arrive BEFORE the window
	// announcement to exercise the orphan stash, and out of index order.
	const symSize, streamID = 48, 8
	data := make([]byte, symSize*5-17)
	for i := range data {
		data[i] = byte(i*13 + 1)
	}
	pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
		WindowID: 7, Index: 2, Data: fecRepairFor(wire.FECSchemeRS, 2, symSize, data),
	})
	pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
		WindowID: 7, Index: 0, Data: fecRepairFor(wire.FECSchemeRS, 0, symSize, data),
	})
	if pair.Client.Stats().FECRecoveredBytes != 0 {
		t.Fatal("nothing should recover before the window announcement")
	}
	// Deliver symbols 0, 2, 3; symbols 1 and 4 (the short tail) are lost.
	for _, i := range []int{0, 2, 3} {
		pair.Client.handleStreamFrame(now, &wire.StreamFrame{
			StreamID: streamID,
			Offset:   uint64(i * symSize),
			Data:     data[i*symSize : (i+1)*symSize],
		})
	}
	pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
		WindowID: 7, StreamID: streamID, BaseOffset: 0,
		DataLen: uint64(len(data)), SymbolSize: symSize,
		Scheme: wire.FECSchemeRS, Repairs: 3,
	})

	st := pair.Client.Stats()
	wantRecovered := uint64(symSize + (len(data) - 4*symSize))
	if st.FECRecoveredBytes != wantRecovered {
		t.Fatalf("FECRecoveredBytes = %d, want %d", st.FECRecoveredBytes, wantRecovered)
	}
	if buf := col.data[streamID]; buf == nil || !bytes.Equal(buf.Bytes(), data) {
		t.Fatal("recovered stream data does not match the original")
	}
}

func TestFECDecoderGiveUps(t *testing.T) {
	pair := fecPair(t, 11)
	now := 2 * time.Second

	// Malformed repair: payload length contradicts the window's symbol size.
	pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
		WindowID: 1, StreamID: 8, BaseOffset: 0,
		DataLen: 64, SymbolSize: 32, Scheme: wire.FECSchemeRS, Repairs: 2,
	})
	pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
		WindowID: 1, Index: 0, Data: make([]byte, 16),
	})
	if got := pair.Client.Stats().FECDecoderGiveUps; got != 1 {
		t.Fatalf("give-ups after malformed repair = %d, want 1", got)
	}

	// Too many losses: no stream data at all, k=4 but only 1 repair symbol
	// announced — the window can never recover and must retire.
	pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
		WindowID: 2, StreamID: 9, BaseOffset: 0,
		DataLen: 128, SymbolSize: 32, Scheme: wire.FECSchemeXOR, Repairs: 1,
	})
	pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
		WindowID: 2, Index: 0, Data: make([]byte, 32),
	})
	if got := pair.Client.Stats().FECDecoderGiveUps; got != 2 {
		t.Fatalf("give-ups after unrecoverable window = %d, want 2", got)
	}
	// Both failures leave the decoder live and the connection untouched.
	if pair.Client.Stats().FECRecoveredBytes != 0 {
		t.Fatal("no bytes should have been recovered")
	}
}

func TestFECWindowEviction(t *testing.T) {
	pair := fecPair(t, 12)
	now := 2 * time.Second
	// Announce one more live window than the decoder retains; none ever
	// completes, so the oldest must be FIFO-evicted with a give-up.
	for i := 0; i <= maxActiveFECWindows; i++ {
		pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
			WindowID: uint64(i + 1), StreamID: 8, BaseOffset: uint64(i * 1024),
			DataLen: 1024, SymbolSize: 512, Scheme: wire.FECSchemeXOR, Repairs: 1,
		})
	}
	if got := pair.Client.Stats().FECDecoderGiveUps; got != 1 {
		t.Fatalf("give-ups after eviction = %d, want 1", got)
	}
	if got := len(pair.Client.fecDec.wins); got != maxActiveFECWindows {
		t.Fatalf("live windows = %d, want %d", got, maxActiveFECWindows)
	}
}

// --- end-to-end ----------------------------------------------------------

func TestFECRecoversLostDataEndToEnd(t *testing.T) {
	loop := sim.NewLoop()
	ccfg, scfg := defaultMPConfig()
	ccfg.Params.EnableFEC = true
	scfg.Params.EnableFEC = true
	// Force protection with enough repairs to ride out the drop pattern.
	scfg.FECGate = func(now, maxDeliver time.Duration, loss float64, k int) (bool, int) {
		return true, 4
	}
	pair := NewPair(loop, sim.NewRNG(21), TwoPathConfig(10, 10, 20*time.Millisecond, 60*time.Millisecond), ccfg, scfg)
	// Deterministically drop every 9th large (data-bearing) server→client
	// packet on each path once the handshake is done.
	for _, p := range pair.Network.Paths {
		n := 0
		p.Down().SetDropFunc(func(data []byte) bool {
			if len(data) < 600 {
				return false
			}
			n++
			return n%9 == 0
		})
	}
	transfer(t, pair, 512<<10, 30*time.Second)

	sst := pair.Server.Stats()
	cst := pair.Client.Stats()
	if sst.FECWindowsSent == 0 || sst.FECRepairsSent == 0 {
		t.Fatalf("server sent no FEC frames: %+v", sst)
	}
	if cst.FECWindowsRecv == 0 || cst.FECRepairsRecv == 0 {
		t.Fatal("client saw no FEC frames")
	}
	if cst.FECRecoveredBytes == 0 {
		t.Fatal("decoder recovered nothing despite forced loss")
	}
	// The recovery reports must have reached the sender and suppressed at
	// least part of the retransmission load (lane rule 2).
	if sst.FECSuppressedBytes == 0 {
		t.Fatal("sender never suppressed a retransmission from FEC_RECOVERED")
	}
}

func TestFECNegotiationFallback(t *testing.T) {
	loop := sim.NewLoop()
	ccfg, scfg := defaultMPConfig()
	ccfg.Params.EnableFEC = true // server side stays off
	pair := NewPair(loop, sim.NewRNG(22), TwoPathConfig(10, 10, 20*time.Millisecond, 60*time.Millisecond), ccfg, scfg)
	transfer(t, pair, 128<<10, 10*time.Second)
	if pair.Client.fecEnabled || pair.Server.fecEnabled {
		t.Fatal("FEC must not enable when only one side offers it")
	}
	if st := pair.Server.Stats(); st.FECWindowsSent != 0 || st.FECRepairsSent != 0 {
		t.Fatalf("non-negotiated connection sent FEC frames: %+v", st)
	}
	if st := pair.Client.Stats(); st.FECWindowsRecv != 0 {
		t.Fatal("client counted FEC frames that were never sent")
	}
}

func TestFECCoverageSuppressesReinjection(t *testing.T) {
	// With the whole stream FEC-covered, the re-injection scanner must not
	// duplicate any of it (lane rule 1), even in a mode that otherwise
	// re-injects at the stream tail.
	run := func(enableFEC bool) ConnStats {
		loop := sim.NewLoop()
		ccfg, scfg := defaultMPConfig()
		ccfg.Params.EnableFEC = enableFEC
		scfg.Params.EnableFEC = enableFEC
		scfg.ReinjectionMode = ReinjectStreamPriority
		scfg.FECGate = func(now, maxDeliver time.Duration, loss float64, k int) (bool, int) {
			return true, 1
		}
		pair := NewPair(loop, sim.NewRNG(23), TwoPathConfig(8, 2, 20*time.Millisecond, 100*time.Millisecond), ccfg, scfg)
		transfer(t, pair, 256<<10, 30*time.Second)
		return pair.Server.Stats()
	}
	with := run(true)
	without := run(false)
	if without.ReinjectedBytesSent == 0 {
		t.Fatal("baseline should re-inject at the stream tail")
	}
	if with.ReinjectedBytesSent >= without.ReinjectedBytesSent {
		t.Fatalf("FEC coverage should shrink re-injection: with=%d without=%d",
			with.ReinjectedBytesSent, without.ReinjectedBytesSent)
	}
	if with.FECWindowsSent == 0 {
		t.Fatal("FEC run sent no windows")
	}
}

// --- allocation gates (DESIGN.md §11/§13) --------------------------------

// TestAllocGateFECKernel pins the GF(256) coding kernels and the encoder
// accumulate path at zero steady-state allocations: repair generation runs
// inside the send loop for every first transmission when FEC is negotiated.
func TestAllocGateFECKernel(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc gate needs steady-state measurement")
	}
	dst := make([]byte, 1024)
	src := make([]byte, 1024)
	for i := range src {
		src[i] = byte(i)
	}
	if n := testing.AllocsPerRun(200, func() {
		fecMulAddInto(dst, src, 1)    // XOR fast path
		fecMulAddInto(dst, src, 0x1d) // general multiply-accumulate
		fecScaleRow(dst, 0x35)
	}); n != 0 {
		t.Fatalf("coding kernel allocates %.1f/op, want 0", n)
	}

	// Encoder accumulate: chunks flow into the pre-sized window buffer
	// without growing it. Flushing is excluded — it queues frames, which
	// allocate by design (the justified sites in fecFlush).
	c := &Conn{cfg: Config{FECSymbolSize: 256, FECWindowSymbols: 8}.withDefaults()}
	c.fecInit()
	// The buffer extends past the accumulated range so no chunk ends at a
	// frame boundary — a boundary would flush, and flushing queues frames
	// (which needs a full connection and allocates by design).
	s := &SendStream{id: 1, buf: make([]byte, 4096)}
	if n := testing.AllocsPerRun(200, func() {
		c.fecEnc.active = false
		c.fecEnc.buf = c.fecEnc.buf[:0]
		for off := uint64(0); off < 2048; off += 512 {
			c.fecAddSource(0, s, chunk{streamID: 1, offset: off, length: 512, isNew: true})
		}
	}); n != 0 {
		t.Fatalf("encoder accumulate allocates %.1f/op, want 0", n)
	}

	// Decoder solve scratch: after the first recovery grew the buffers,
	// repeated solves of same-shaped windows must not allocate beyond the
	// queued FEC_RECOVERED frame and the recovered-range bookkeeping.
	pair := fecPair(t, 13)
	now := 2 * time.Second
	const symSize, streamID = 64, 8
	data := make([]byte, symSize*4)
	for i := range data {
		data[i] = byte(i * 3)
	}
	winID := uint64(0)
	solveOnce := func() {
		winID++
		base := (winID - 1) * uint64(len(data))
		for i := 0; i < 4; i++ {
			if i == 1 {
				continue
			}
			pair.Client.handleStreamFrame(now, &wire.StreamFrame{
				StreamID: streamID,
				Offset:   base + uint64(i*symSize),
				Data:     data[i*symSize : (i+1)*symSize],
			})
		}
		pair.Client.handleFECWindow(now, &wire.FECWindowFrame{
			WindowID: winID, StreamID: streamID, BaseOffset: base,
			DataLen: uint64(len(data)), SymbolSize: symSize,
			Scheme: wire.FECSchemeXOR, Repairs: 1,
		})
		pair.Client.handleFECRepair(now, &wire.FECRepairFrame{
			WindowID: winID, Index: 0, Data: fecRepairFor(wire.FECSchemeXOR, 0, symSize, data),
		})
	}
	for i := 0; i < 8; i++ {
		solveOnce() // warm scratch, stream buffer, control queue
	}
	// The xlinkdebug assertions allocate on the reassembly path by design,
	// so the precise budget only holds in release mode.
	solveGate := 24.0
	if assert.Enabled {
		solveGate = 48
	}
	if n := testing.AllocsPerRun(100, solveOnce); n > solveGate {
		t.Fatalf("warm decode cycle allocates %.1f/op, gate %.0f", n, solveGate)
	}
	if pair.Client.Stats().FECRecoveredBytes == 0 {
		t.Fatal("solve loop never recovered")
	}
}
