package transport

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/wire"
)

func testSealer(t *testing.T) *crypto.Sealer {
	t.Helper()
	s, err := crypto.NewSealer([]byte("packet-test-secret-0123456789abc"), "dir")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSealOpenShortRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	payload := []byte("some frames here")
	pkt := sealShort(sealer, dcid, 3, 42, 40, payload)
	pn, got, _, err := openShort(sealer, nil, pkt, len(dcid), 3, 41)
	if err != nil {
		t.Fatal(err)
	}
	if pn != 42 {
		t.Fatalf("pn = %d", pn)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}
}

func TestOpenShortRejectsWrongPath(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	pkt := sealShort(sealer, dcid, 3, 42, 40, []byte("x"))
	if _, _, _, err := openShort(sealer, nil, pkt, len(dcid), 4, 41); err == nil {
		t.Fatal("wrong path nonce must fail to decrypt")
	}
}

func TestOpenShortRejectsCorruption(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	pkt := sealShort(sealer, dcid, 0, 7, -1, []byte("payload"))
	for i := 0; i < len(pkt); i++ {
		bad := append([]byte(nil), pkt...)
		bad[i] ^= 0xff
		if _, _, _, err := openShort(sealer, nil, bad, len(dcid), 0, -1); err == nil {
			// Flipping a bit in the unprotected DCID changes where the
			// receiver looks up the path; the caller resolves that before
			// openShort, so only header/ciphertext bits must fail here.
			if i >= 1 && i <= 8 {
				continue
			}
			t.Fatalf("corruption at byte %d not detected", i)
		}
	}
}

func TestOpenShortTruncated(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	pkt := sealShort(sealer, dcid, 0, 7, -1, []byte("payload"))
	for i := 0; i < len(pkt); i++ {
		if _, _, _, err := openShort(sealer, nil, pkt[:i], len(dcid), 0, -1); err == nil {
			t.Fatalf("truncation at %d not detected", i)
		}
	}
}

func TestSealOpenLongRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{9, 9, 9, 9}
	scid := wire.ConnectionID{8, 8, 8, 8, 8, 8}
	payload := []byte("crypto frame contents")
	pkt := sealLong(sealer, dcid, scid, 0, -1, payload)
	hdr, got, consumed, err := openLong(sealer, pkt, -1)
	if err != nil {
		t.Fatal(err)
	}
	if !hdr.DCID.Equal(dcid) || !hdr.SCID.Equal(scid) || hdr.PacketNumber != 0 {
		t.Fatalf("header %+v", hdr)
	}
	if consumed != len(pkt) {
		t.Fatalf("consumed %d of %d", consumed, len(pkt))
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch")
	}
}

func TestSealShortTinyPayloadPadded(t *testing.T) {
	// Header protection needs 16 bytes of sample 4 bytes past the pn;
	// tiny payloads must be padded, never panic.
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	for size := 0; size < 8; size++ {
		pkt := sealShort(sealer, dcid, 1, uint64(size), -1, make([]byte, size))
		if _, _, _, err := openShort(sealer, nil, pkt, len(dcid), 1, -1); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}

func TestPropertyPacketRoundTrip(t *testing.T) {
	sealer := testSealer(t)
	dcid := wire.ConnectionID{1, 2, 3, 4, 5, 6, 7, 8}
	f := func(pathID uint32, pnDelta uint16, payload []byte) bool {
		largest := int64(1000)
		pn := uint64(largest) + 1 + uint64(pnDelta%64)
		pkt := sealShort(sealer, dcid, pathID, pn, largest, payload)
		gotPN, got, _, err := openShort(sealer, nil, pkt, len(dcid), pathID, largest)
		if err != nil || gotPN != pn {
			return false
		}
		// Padding may extend tiny payloads with zero bytes.
		if len(got) < len(payload) {
			return false
		}
		return bytes.Equal(got[:len(payload)], payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
