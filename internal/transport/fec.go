package transport

import (
	"math"
	"time"

	"repro/internal/wire"
)

// Forward erasure correction: the third recovery lane (DESIGN.md §13).
//
// The sender groups first transmissions of one stream's data into windows
// of up to FECWindowSymbols symbols and emits repair symbols over them, so
// a receiver can rebuild a lost symbol without waiting an RTT for the
// ACK-driven lane or racing a re-injected copy. The code is a
// Cauchy-matrix Reed-Solomon-style code over GF(256): coefficient
// c(j,i) = 1/(x_j ⊕ y_i) with x_j = j (repair index, < 16) and
// y_i = 16+i (source index, < 80). The x's and y's are pairwise distinct,
// so every square submatrix of the coefficient matrix is invertible — any
// m ≤ repairs lost source symbols are recoverable from any m repair
// symbols. The XOR scheme is the repairs==1 special case (all-ones
// coefficients), kept as its own wire scheme for cheap single-loss
// protection.
//
// Lane-interaction rules:
//   - sender: FEC-covered ranges are skipped by re-injection scanning
//     (the QoE gate chose proactive protection over reactive duplication);
//     loss-triggered retransmission is NOT suppressed by coverage alone —
//     repairs ride unreliable frames and may themselves die.
//   - receiver: recovered ranges flow through the normal reassembly path
//     and are reported back with FEC_RECOVERED, which subtracts them from
//     the sender's retransmission queue and pending re-injections.
//   - fallbacks: a peer that does not negotiate enable_fec never sees FEC
//     frames; a malformed repair symbol or an over-lossy window retires the
//     window with a decoder give-up event and the classic two lanes finish
//     the job.

// GF(256) arithmetic with the AES/RS polynomial 0x11d. The exp table is
// doubled so gfMul needs no modular reduction of the log sum.
var (
	gfExp [512]byte
	gfLog [256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		gfExp[i] = byte(x)
		gfLog[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= 0x11d
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
}

// gfMul multiplies in GF(256).
//
// xlinkvet:hot
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return gfExp[int(gfLog[a])+int(gfLog[b])]
}

// gfInv inverts a nonzero GF(256) element.
//
// xlinkvet:hot
func gfInv(a byte) byte {
	return gfExp[255-int(gfLog[a])]
}

// fecCoeff returns the code coefficient of source symbol i in repair
// symbol j. XOR is the all-ones row; RS is the Cauchy matrix described in
// the package comment.
//
// xlinkvet:hot
func fecCoeff(scheme uint64, j, i int) byte {
	if scheme == wire.FECSchemeXOR {
		return 1
	}
	return gfInv(byte(j) ^ byte(16+i))
}

// fecMulAddInto accumulates dst ^= c·src over GF(256). src may be shorter
// than dst (a short final source symbol): the implicit zero padding
// contributes nothing, so iterating src's length is exact.
//
// xlinkvet:hot
// xlinkvet:loan src
func fecMulAddInto(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		for i, b := range src {
			dst[i] ^= b
		}
		return
	}
	lc := int(gfLog[c])
	for i, b := range src {
		if b != 0 {
			dst[i] ^= gfExp[lc+int(gfLog[b])]
		}
	}
}

// fecScaleRow multiplies row in place by nonzero c over GF(256).
//
// xlinkvet:hot
func fecScaleRow(row []byte, c byte) {
	if c == 1 {
		return
	}
	lc := int(gfLog[c])
	for i, b := range row {
		if b != 0 {
			row[i] = gfExp[lc+int(gfLog[b])]
		}
	}
}

// Decoder buffering bounds: the transport's own limits, tighter than the
// wire-level sanity caps.
const (
	// maxActiveFECWindows bounds live receive windows (FIFO eviction).
	maxActiveFECWindows = 16
	// maxOrphanRepairs bounds repair symbols stashed before their window
	// announcement arrives (frames may reorder across paths).
	maxOrphanRepairs = 32
)

// fecEncoder accumulates contiguous first transmissions of one stream into
// the current protection window.
type fecEncoder struct {
	symbolSize int
	maxSymbols int
	nextWindow uint64

	active   bool
	streamID uint64
	base     uint64 // stream offset of buf[0]
	buf      []byte // accumulated source data; cap symbolSize*maxSymbols
	scratch  []byte // repair generation scratch, repairs*symbolSize
}

// fecRecvWindow is one announced protection window on the receive side.
type fecRecvWindow struct {
	id       uint64
	streamID uint64
	base     uint64
	dataLen  uint64
	symSize  int
	scheme   uint64
	repairs  int
	k        int

	repairData  [][]byte // by repair index; nil = not yet received
	haveRepairs int
	done        bool
}

// fecDecoder holds the receive windows, the orphan-repair stash, and the
// solve scratch reused across recoveries.
// fecGiveUpBurstN/fecGiveUpBurstWindow define the give-up-burst anomaly:
// N decoder give-ups within the window means the repair budget is being
// overwhelmed faster than episodic loss explains, which is worth a
// flight-recorder dump.
const (
	fecGiveUpBurstN      = 3
	fecGiveUpBurstWindow = time.Second
)

type fecDecoder struct {
	wins    []*fecRecvWindow
	orphans []*wire.FECRepairFrame

	// giveUpTimes is a small ring of recent give-up instants for burst
	// detection; giveUpIdx is the next write slot.
	giveUpTimes [fecGiveUpBurstN]time.Duration
	giveUpIdx   int
	giveUpSeen  int

	synBuf  []byte
	swapBuf []byte
	mat     [wire.MaxFECRepairSymbols][wire.MaxFECRepairSymbols]byte
	missIdx [wire.MaxFECRepairSymbols]int
	rowIdx  [wire.MaxFECRepairSymbols]int
}

// find returns the live window with the given ID, or nil.
//
// xlinkvet:hot
func (d *fecDecoder) find(id uint64) *fecRecvWindow {
	for _, w := range d.wins {
		if w.id == id {
			return w
		}
	}
	return nil
}

// hasOpenWindows reports whether any undone window protects streamID —
// the cheap guard handleStreamFrame uses before walking windows.
//
// xlinkvet:hot
func (d *fecDecoder) hasOpenWindows(streamID uint64) bool {
	for _, w := range d.wins {
		if !w.done && w.streamID == streamID {
			return true
		}
	}
	return false
}

// fecInit sizes the encoder buffers once FEC is negotiated. Called from
// becomeEstablished, off the hot path.
func (c *Conn) fecInit() {
	e := &c.fecEnc
	e.symbolSize = c.cfg.FECSymbolSize
	e.maxSymbols = c.cfg.FECWindowSymbols
	e.buf = make([]byte, 0, e.symbolSize*e.maxSymbols)
	e.scratch = make([]byte, wire.MaxFECRepairSymbols*e.symbolSize)
}

// fecAddSource feeds one first-transmission chunk into the current window.
// A discontiguity (stream switch, offset gap) flushes the previous window
// first; a window reaching capacity or a chunk ending a tagged video frame
// (or carrying FIN) flushes immediately, so a window never straddles the
// boundary the QoE re-injection lane schedules around.
//
// xlinkvet:hot
func (c *Conn) fecAddSource(now time.Duration, s *SendStream, ch chunk) {
	e := &c.fecEnc
	if ch.length == 0 {
		if ch.fin {
			c.fecFlush(now)
		}
		return
	}
	if e.active && (e.streamID != ch.streamID || e.base+uint64(len(e.buf)) != ch.offset) {
		c.fecFlush(now)
	}
	if len(e.buf)+int(ch.length) > cap(e.buf) {
		c.fecFlush(now)
	}
	if !e.active {
		e.active = true
		e.streamID = ch.streamID
		e.base = ch.offset
		e.buf = e.buf[:0]
	}
	n := len(e.buf)
	e.buf = e.buf[:n+int(ch.length)]
	copy(e.buf[n:], s.buf[ch.offset:ch.offset+ch.length])
	if ch.fin || ch.offset+ch.length == s.frameAt(ch.offset).End {
		c.fecFlush(now)
	}
}

// fecTailFlush protects the tail of the current window at the end of a
// send pass — but only when the pass stopped because data ran out, not
// because congestion windows closed (more contiguous data is coming).
//
// xlinkvet:hot
func (c *Conn) fecTailFlush(now time.Duration) {
	if !c.fecEnc.active {
		return
	}
	for _, s := range c.streamsInOrder() {
		if s.hasNewData() {
			return
		}
	}
	c.fecFlush(now)
}

// fecFlush closes the current window: asks the gate whether and how hard
// to protect it, generates the repair symbols, and queues the FEC_WINDOW
// and FEC_REPAIR frames (unreliable — retransmitting redundancy defeats
// its purpose).
//
// xlinkvet:hot
func (c *Conn) fecFlush(now time.Duration) {
	e := &c.fecEnc
	if !e.active {
		return
	}
	e.active = false
	dataLen := len(e.buf)
	if dataLen == 0 {
		return
	}
	// A window smaller than one symbol shrinks the symbol to the data:
	// the single repair need not carry padding.
	sym := e.symbolSize
	if dataLen < sym {
		sym = dataLen
	}
	k := (dataLen + sym - 1) / sym
	protect, repairs := c.fecPlan(now, k)
	if !protect || repairs <= 0 {
		e.buf = e.buf[:0]
		return
	}
	if repairs > k {
		repairs = k
	}
	if repairs > wire.MaxFECRepairSymbols {
		repairs = wire.MaxFECRepairSymbols
	}
	scheme := wire.FECSchemeRS
	if repairs == 1 {
		scheme = wire.FECSchemeXOR
	}
	winID := e.nextWindow
	e.nextWindow++

	scratch := e.scratch[:repairs*sym]
	for i := range scratch {
		scratch[i] = 0
	}
	for i := 0; i < k; i++ {
		start := i * sym
		end := start + sym
		if end > dataLen {
			end = dataLen
		}
		src := e.buf[start:end]
		for j := 0; j < repairs; j++ {
			fecMulAddInto(scratch[j*sym:(j+1)*sym], src, fecCoeff(scheme, j, i))
		}
	}

	//xlinkvet:ignore hotalloc — FEC_WINDOW is queued (outlives the call); one per window of ~K packets
	win := &wire.FECWindowFrame{
		WindowID:   winID,
		StreamID:   e.streamID,
		BaseOffset: e.base,
		DataLen:    uint64(dataLen),
		SymbolSize: uint64(sym),
		Scheme:     scheme,
		Repairs:    uint64(repairs),
	}
	c.queueCtrl(win, -1, false)
	c.stats.FECWindowsSent++
	c.tr.FECSymbolSent(now, winID, e.streamID, -1, win.Len())
	for j := 0; j < repairs; j++ {
		//xlinkvet:ignore hotalloc — repair payload is owned by the queued frame (outlives the call and the scratch reuse)
		payload := append([]byte(nil), scratch[j*sym:(j+1)*sym]...)
		//xlinkvet:ignore hotalloc — FEC_REPAIR is queued (outlives the call); bounded by the window's repair count
		c.queueCtrl(&wire.FECRepairFrame{WindowID: winID, Index: uint64(j), Data: payload}, -1, false)
		c.stats.FECRepairsSent++
		c.stats.FECRepairBytesSent += uint64(len(payload))
		c.tr.FECSymbolSent(now, winID, e.streamID, j, len(payload))
	}
	if s := c.sendStreams[e.streamID]; s != nil {
		// Proactive protection replaces reactive duplication for this range:
		// the re-injection scanner skips it (lane rule 1).
		s.fecCovered.Add(e.base, e.base+uint64(dataLen))
	}
	e.buf = e.buf[:0]
}

// fecPlan decides whether to protect a window of k source symbols and with
// how many repair symbols. The configured gate (the QoE redundancy
// controller) wins; the default is loss-proportional: ceil(k·loss) repairs
// clamped to [1, 4], always protecting.
//
// xlinkvet:hot
func (c *Conn) fecPlan(now time.Duration, k int) (bool, int) {
	loss := c.pathLossRate()
	if c.cfg.FECGate != nil {
		return c.cfg.FECGate(now, c.maxDeliverTime(), loss, k)
	}
	repairs := int(math.Ceil(float64(k) * loss))
	if repairs < 1 {
		repairs = 1
	}
	if repairs > 4 {
		repairs = 4
	}
	return true, repairs
}

// pathLossRate estimates the connection-wide packet loss rate from the
// recovery spaces' counters, summed over paths (order-independent, so the
// estimate is deterministic). Below 32 sent packets it reports 0 — too few
// samples to size redundancy from.
//
// xlinkvet:hot
func (c *Conn) pathLossRate() float64 {
	var sent, lost uint64
	for _, id := range c.pathOrder {
		st := c.paths[id].Space.Stats()
		sent += st.SentPackets
		lost += st.LostPackets
	}
	if sent < 32 {
		return 0
	}
	return float64(lost) / float64(sent)
}

// handleFECWindow ingests a window announcement: creates the receive
// window (FIFO-evicting the oldest live one past the cap), claims any
// repair symbols that arrived first, and tries an immediate recovery.
func (c *Conn) handleFECWindow(now time.Duration, fr *wire.FECWindowFrame) {
	if !c.fecEnabled {
		return // not negotiated: ignore silently (fallback rule)
	}
	c.stats.FECWindowsRecv++
	d := &c.fecDec
	if d.find(fr.WindowID) != nil {
		return // duplicate announcement
	}
	// Compact retired windows, then make room.
	w := 0
	for _, win := range d.wins {
		if !win.done {
			d.wins[w] = win
			w++
		}
	}
	for i := w; i < len(d.wins); i++ {
		d.wins[i] = nil
	}
	d.wins = d.wins[:w]
	for len(d.wins) >= maxActiveFECWindows {
		c.fecGiveUp(now, d.wins[0], "evicted")
		copy(d.wins, d.wins[1:])
		d.wins[len(d.wins)-1] = nil
		d.wins = d.wins[:len(d.wins)-1]
	}
	//xlinkvet:ignore hotalloc — one window object (and its repair table) per announced window, bounded by maxActiveFECWindows
	win := &fecRecvWindow{
		id:       fr.WindowID,
		streamID: fr.StreamID,
		base:     fr.BaseOffset,
		dataLen:  fr.DataLen,
		symSize:  int(fr.SymbolSize),
		scheme:   fr.Scheme,
		repairs:  int(fr.Repairs),
		k:        fr.SourceSymbols(),
		//xlinkvet:ignore hotalloc — one repair table per announced window, bounded by maxActiveFECWindows
		repairData: make([][]byte, fr.Repairs),
	}
	d.wins = append(d.wins, win)
	// Claim stashed repairs for this window.
	o := 0
	for _, rf := range d.orphans {
		if rf.WindowID == fr.WindowID {
			c.fecAttachRepair(now, win, rf)
		} else {
			d.orphans[o] = rf
			o++
		}
	}
	for i := o; i < len(d.orphans); i++ {
		d.orphans[i] = nil
	}
	d.orphans = d.orphans[:o]
	c.fecTryRecoverWindow(now, win)
}

// handleFECRepair ingests one repair symbol, stashing it (bounded FIFO) if
// its window announcement has not arrived yet.
func (c *Conn) handleFECRepair(now time.Duration, fr *wire.FECRepairFrame) {
	if !c.fecEnabled {
		return
	}
	c.stats.FECRepairsRecv++
	c.tr.FECSymbolReceived(now, fr.WindowID, int(fr.Index), len(fr.Data))
	d := &c.fecDec
	w := d.find(fr.WindowID)
	if w == nil {
		if len(d.orphans) >= maxOrphanRepairs {
			copy(d.orphans, d.orphans[1:])
			d.orphans[len(d.orphans)-1] = nil
			d.orphans = d.orphans[:len(d.orphans)-1]
		}
		d.orphans = append(d.orphans, fr)
		return
	}
	c.fecAttachRepair(now, w, fr)
	c.fecTryRecoverWindow(now, w)
}

// fecAttachRepair pairs a repair symbol with its window. A symbol that
// contradicts the window's announcement (index beyond the announced count,
// payload not matching the symbol size) marks the whole window malformed:
// the decoder gives up and the classic lanes recover the data.
func (c *Conn) fecAttachRepair(now time.Duration, w *fecRecvWindow, fr *wire.FECRepairFrame) {
	if w.done {
		return
	}
	if int(fr.Index) >= w.repairs || len(fr.Data) != w.symSize {
		c.fecGiveUp(now, w, "malformed_repair")
		return
	}
	if w.repairData[fr.Index] != nil {
		return // duplicate symbol
	}
	w.repairData[fr.Index] = fr.Data
	w.haveRepairs++
}

// fecGiveUp retires a window without recovery.
func (c *Conn) fecGiveUp(now time.Duration, w *fecRecvWindow, reason string) {
	if w.done {
		return
	}
	w.done = true
	c.stats.FECDecoderGiveUps++
	c.tr.FECGiveUp(now, w.id, reason)
	d := &c.fecDec
	d.giveUpTimes[d.giveUpIdx] = now
	d.giveUpIdx = (d.giveUpIdx + 1) % fecGiveUpBurstN
	d.giveUpSeen++
	// The slot just advanced past holds the oldest of the last N give-ups:
	// if it is within the window, N landed inside it — a burst.
	if d.giveUpSeen >= fecGiveUpBurstN &&
		now-d.giveUpTimes[d.giveUpIdx] <= fecGiveUpBurstWindow {
		c.tr.Anomaly(now, "fec_giveup_burst")
	}
}

// fecOnStreamData re-examines the stream's live windows after new stream
// data arrived: windows whose range is now fully present retire, and a
// window whose missing count just dropped to its repair count may solve.
//
// xlinkvet:hot
func (c *Conn) fecOnStreamData(now time.Duration, streamID uint64) {
	for _, w := range c.fecDec.wins {
		if !w.done && w.streamID == streamID {
			c.fecTryRecoverWindow(now, w)
		}
	}
}

// fecTryRecoverWindow retires a fully-received window, gives up on an
// unrecoverable one (more losses than repair symbols), waits if more
// repair symbols could still arrive, and otherwise solves.
func (c *Conn) fecTryRecoverWindow(now time.Duration, w *fecRecvWindow) {
	if w.done {
		return
	}
	d := &c.fecDec
	rs := c.recvStreams[w.streamID]
	if rs != nil && rs.received.Contains(w.base, w.base+w.dataLen) {
		w.done = true // everything arrived through the stream lane
		return
	}
	if w.haveRepairs == 0 {
		return // nothing to solve with yet; keep the walk cheap
	}
	sym := uint64(w.symSize)
	winEnd := w.base + w.dataLen
	m := 0
	for i := 0; i < w.k; i++ {
		start := w.base + uint64(i)*sym
		end := start + sym
		if end > winEnd {
			end = winEnd
		}
		// A partially present symbol counts as missing: recovery rebuilds
		// it whole and reassembly absorbs the overlap as duplicate bytes.
		if rs == nil || !rs.received.Contains(start, end) {
			if m < len(d.missIdx) {
				d.missIdx[m] = i
			}
			m++
		}
	}
	if m == 0 {
		w.done = true
		return
	}
	if m > w.repairs {
		// More symbols lost than the code can ever recover: stop trying,
		// retransmission and re-injection finish the job.
		c.fecGiveUp(now, w, "too_many_losses")
		return
	}
	if m > w.haveRepairs {
		return // recoverable, but more repair symbols must arrive first
	}
	c.fecSolveWindow(now, w, rs, m)
}

// fecSolveWindow recovers the m missing source symbols of w from m received
// repair symbols: syndromes T_j = R_j ⊕ Σ_present c(j,i)·S_i reduce the
// system to an m×m Cauchy submatrix solved by Gauss-Jordan elimination over
// GF(256). Recovered bytes flow through the normal reassembly/delivery
// path and are reported to the sender with FEC_RECOVERED.
func (c *Conn) fecSolveWindow(now time.Duration, w *fecRecvWindow, rs *RecvStream, m int) {
	d := &c.fecDec
	sym := w.symSize
	winEnd := w.base + w.dataLen
	// The first m received repair symbols carry the solve.
	r := 0
	for j := 0; j < w.repairs && r < m; j++ {
		if w.repairData[j] != nil {
			d.rowIdx[r] = j
			r++
		}
	}
	//xlinkvet:cold — solve scratch grows to the high-water mark once, reused across recoveries
	if cap(d.synBuf) < m*sym {
		d.synBuf = make([]byte, m*sym)
	}
	//xlinkvet:cold — row-swap scratch grows to the symbol size once, reused across recoveries
	if cap(d.swapBuf) < sym {
		d.swapBuf = make([]byte, sym)
	}
	syn := d.synBuf[:m*sym]
	for i := 0; i < m; i++ {
		copy(syn[i*sym:(i+1)*sym], w.repairData[d.rowIdx[i]])
	}
	// Subtract every fully-present source symbol's contribution.
	mi := 0
	for i := 0; i < w.k; i++ {
		if mi < m && d.missIdx[mi] == i {
			mi++
			continue
		}
		start := w.base + uint64(i)*uint64(sym)
		end := start + uint64(sym)
		if end > winEnd {
			end = winEnd
		}
		src := rs.buf[start:end]
		for rr := 0; rr < m; rr++ {
			fecMulAddInto(syn[rr*sym:(rr+1)*sym], src, fecCoeff(w.scheme, d.rowIdx[rr], i))
		}
	}
	// Gauss-Jordan on (mat | syn).
	for rr := 0; rr < m; rr++ {
		for cc := 0; cc < m; cc++ {
			d.mat[rr][cc] = fecCoeff(w.scheme, d.rowIdx[rr], d.missIdx[cc])
		}
	}
	for col := 0; col < m; col++ {
		piv := -1
		for rr := col; rr < m; rr++ {
			if d.mat[rr][col] != 0 {
				piv = rr
				break
			}
		}
		if piv < 0 {
			// Unreachable for the Cauchy code, but a defensive give-up beats
			// a panic on a hostile peer's coefficients.
			c.fecGiveUp(now, w, "malformed_repair")
			return
		}
		if piv != col {
			d.mat[piv], d.mat[col] = d.mat[col], d.mat[piv]
			swap := d.swapBuf[:sym]
			copy(swap, syn[col*sym:(col+1)*sym])
			copy(syn[col*sym:(col+1)*sym], syn[piv*sym:(piv+1)*sym])
			copy(syn[piv*sym:(piv+1)*sym], swap)
		}
		if inv := gfInv(d.mat[col][col]); inv != 1 {
			for cc := col; cc < m; cc++ {
				d.mat[col][cc] = gfMul(d.mat[col][cc], inv)
			}
			fecScaleRow(syn[col*sym:(col+1)*sym], inv)
		}
		for rr := 0; rr < m; rr++ {
			if rr == col {
				continue
			}
			f := d.mat[rr][col]
			if f == 0 {
				continue
			}
			for cc := col; cc < m; cc++ {
				d.mat[rr][cc] ^= gfMul(f, d.mat[col][cc])
			}
			fecMulAddInto(syn[rr*sym:(rr+1)*sym], syn[col*sym:(col+1)*sym], f)
		}
	}
	// Inject the recovered symbols through the normal delivery path and
	// tell the sender (lane rule 2). FEC_RECOVERED is advisory and
	// unreliable: losing it only costs redundant resends.
	w.done = true
	for col := 0; col < m; col++ {
		i := d.missIdx[col]
		start := w.base + uint64(i)*uint64(sym)
		end := start + uint64(sym)
		if end > winEnd {
			end = winEnd
		}
		data := syn[col*sym : col*sym+int(end-start)]
		c.stats.FECRecoveredBytes += end - start
		c.tr.FECRecovered(now, w.id, w.streamID, start, int(end-start))
		dst := c.streamForRecv(now, w.streamID)
		c.deliverStreamData(now, dst, start, data, false)
		//xlinkvet:ignore hotalloc — FEC_RECOVERED is queued (outlives the call); fires once per recovered symbol
		c.queueCtrl(&wire.FECRecoveredFrame{StreamID: w.streamID, Offset: start, Length: end - start}, -1, false)
	}
}

// handleFECRecovered applies the receiver's recovery report on the sender:
// the range needs neither retransmission nor re-injection. The claim is
// clamped to data we actually wrote, so a hostile peer cannot poison
// bookkeeping beyond suppressing resends of bytes it says it holds.
func (c *Conn) handleFECRecovered(now time.Duration, fr *wire.FECRecoveredFrame) {
	if !c.fecEnabled {
		return
	}
	s := c.sendStreams[fr.StreamID]
	if s == nil {
		return
	}
	end := fr.Offset + fr.Length
	if end > uint64(len(s.buf)) {
		end = uint64(len(s.buf))
	}
	if end <= fr.Offset {
		return
	}
	s.recovered.Add(fr.Offset, end)
	before := s.rtx.Size()
	s.rtx.Subtract(fr.Offset, end)
	c.stats.FECSuppressedBytes += before - s.rtx.Size()
}
