package xlink

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestDebugHandlerLive runs a small live transfer while the /metrics and
// /debug endpoints are scraped concurrently (under -race this proves the
// handler's locking discipline), then checks that closing the endpoint
// lands the session scorecard in the exposition.
func TestDebugHandlerLive(t *testing.T) {
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	var server *Endpoint
	serverReady := make(chan struct{})
	server, err := Listen("127.0.0.1:0", LiveConfig{
		Scheme: SchemeXLINK,
		OnStreamData: func(now time.Duration, s *RecvStream, data []byte, fin bool) {
			if fin {
				<-serverReady
				ss := server.StreamFor(s.ID())
				ss.Write(payload)
				ss.Close()
			}
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(serverReady)
	defer server.Close()

	doneCh := make(chan struct{})
	handshakeCh := make(chan struct{})
	var once sync.Once
	client, err := Dial(server.LocalAddrs()[0].String(),
		[]string{"127.0.0.1:0", "127.0.0.1:0"},
		[]Technology{TechWiFi, TechLTE}, LiveConfig{
			Scheme: SchemeXLINK,
			OnStreamData: func(now time.Duration, s *RecvStream, data []byte, fin bool) {
				if fin {
					once.Do(func() { close(doneCh) })
				}
			},
			OnHandshakeDone: func(now time.Duration) { close(handshakeCh) },
			Seed:            2,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// No Tracer was configured, so TraceBytes keeps its nil contract while
	// the internal flight trace still backs the debug surface.
	if client.TraceBytes() != nil {
		t.Error("TraceBytes should be nil without a configured Tracer")
	}

	srv := httptest.NewServer(client.DebugHandler())
	defer srv.Close()
	get := func(path string) string {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body)
	}

	// Scrape continuously while the transfer runs.
	scrapeStop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			get("/metrics")
			get("/debug")
			time.Sleep(time.Millisecond)
		}
	}()

	select {
	case <-handshakeCh:
	case <-time.After(10 * time.Second):
		t.Fatal("handshake timed out")
	}
	s := client.OpenStream()
	s.Write([]byte("GET /x\n"))
	s.Close()
	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		t.Fatal("transfer timed out")
	}
	close(scrapeStop)
	scraper.Wait()

	// Live /debug reflects the established connection.
	var dbg struct {
		State       string `json:"state"`
		Established bool   `json:"established"`
		Scorecard   struct {
			StreamBytes uint64 `json:"stream_bytes"`
			Paths       []struct {
				SentPackets uint64 `json:"sent_packets"`
			} `json:"paths"`
		} `json:"scorecard"`
	}
	if err := json.Unmarshal([]byte(get("/debug")), &dbg); err != nil {
		t.Fatalf("/debug is not valid JSON: %v", err)
	}
	if !dbg.Established || dbg.State != "established" {
		t.Errorf("/debug state = %q established = %v", dbg.State, dbg.Established)
	}
	if len(dbg.Scorecard.Paths) == 0 {
		t.Error("/debug scorecard has no paths")
	}

	// /metrics before close: the trace-event families exist, no session yet.
	if m := get("/metrics"); strings.Contains(m, "xlink_sessions_total 1") {
		t.Error("session counted before Close")
	}

	// Close emits and merges the scorecard exactly once.
	client.Close()
	client.Close() // idempotent: must not double-merge
	m := get("/metrics")
	if !strings.Contains(m, "xlink_sessions_total 1") {
		t.Errorf("/metrics after Close missing session rollup:\n%s", m)
	}
	if !strings.Contains(m, "xlink_path_sent_packets_total") {
		t.Errorf("/metrics missing per-path family:\n%s", m)
	}

	// And the registry accessor agrees with the exposition.
	if n := client.Metrics().Counter(obs.MetricSessions).Value(); n != 1 {
		t.Errorf("MetricSessions = %d, want 1", n)
	}
}

// TestServeDebugCleanExit proves the debug scrape server has a real
// shutdown path: ServeDebug's goroutine serves requests, stop() blocks
// until the goroutine has exited, and the port no longer accepts
// connections afterwards. Run under -race this catches both a leaked
// server goroutine and unsynchronized handler state.
func TestServeDebugCleanExit(t *testing.T) {
	ep, err := Listen("127.0.0.1:0", LiveConfig{Scheme: SchemeXLINK, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()

	addr, stop, err := ep.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{"/metrics", "/debug"} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	stopped := make(chan struct{})
	go func() {
		stop()
		close(stopped)
	}()
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop() did not return: serve goroutine leaked")
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("debug server still serving after stop()")
	}
}
