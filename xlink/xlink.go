// Package xlink is the public API of this XLINK reproduction: a
// QoE-driven multi-path QUIC-style transport for video delivery
// (Zheng et al., SIGCOMM 2021).
//
// It offers two ways to run the system:
//
//   - Emulated: NewEmulatedSession wires a multi-homed client and a server
//     over deterministic trace-driven paths on a virtual clock — the mode
//     every experiment in this repository uses.
//   - Live: Listen and Dial run the same transport over real UDP sockets,
//     one socket per client interface, for the cmd/xlink-server and
//     cmd/xlink-client demos.
//
// The transport itself lives in internal packages; this package exposes
// the stable surface: scheme selection (single-path, vanilla multi-path,
// XLINK), the double-thresholding QoE controller knobs, the stream API
// with video-frame priorities, and per-connection statistics.
package xlink

import (
	"time"

	"repro/internal/core"
	"repro/internal/netem"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/video"
	"repro/internal/wire"
)

// Re-exported scheme identifiers.
const (
	SchemeSinglePath = core.SchemeSinglePath
	SchemeVanillaMP  = core.SchemeVanillaMP
	SchemeReinjNoQoE = core.SchemeReinjNoQoE
	SchemeXLINK      = core.SchemeXLINK
)

// Scheme selects the transport behaviour.
type Scheme = core.Scheme

// Options tunes a scheme; see core.Options for the full documentation.
type Options = core.Options

// Thresholds are the double-thresholding parameters of Alg. 1.
type Thresholds = qoe.Thresholds

// QoESignal is the client player feedback carried in ACK_MP frames.
type QoESignal = wire.QoESignal

// Technology identifies a wireless access technology for wireless-aware
// primary path selection.
type Technology = trace.Technology

// Wireless technologies, in primary-path preference order.
const (
	Tech5GSA  = trace.Tech5GSA
	Tech5GNSA = trace.Tech5GNSA
	TechWiFi  = trace.TechWiFi
	TechLTE   = trace.TechLTE
)

// Video describes a short-form video object served over XLINK.
type Video = video.Video

// PlayerMetrics summarizes a playback session.
type PlayerMetrics = video.Metrics

// SessionConfig configures an emulated video session; see
// core.SessionConfig.
type SessionConfig = core.SessionConfig

// SessionResult is the outcome of an emulated session.
type SessionResult = core.SessionResult

// PathConfig describes one emulated path.
type PathConfig = netem.PathConfig

// RunEmulatedSession plays one video over an emulated multi-path network
// under the chosen scheme and returns its measurements. It is fully
// deterministic for a given SessionConfig.Seed.
func RunEmulatedSession(cfg SessionConfig) (SessionResult, error) {
	return core.RunSession(cfg)
}

// TwoPathNetwork builds the common Wi-Fi + LTE topology with constant-rate
// links: rates in Mbit/s and full round-trip times per path.
func TwoPathNetwork(wifiMbps, lteMbps float64, wifiRTT, lteRTT time.Duration) []PathConfig {
	return transport.TwoPathConfig(wifiMbps, lteMbps, wifiRTT, lteRTT)
}

// WalkingTracePaths builds the fast-varying campus-walk topology of
// Fig 1/Fig 6: a Wi-Fi trace with a deep outage plus a steadier LTE trace.
func WalkingTracePaths(seed int64, duration time.Duration) []PathConfig {
	rng := sim.NewRNG(seed)
	return []PathConfig{
		{Name: "wifi", Tech: trace.TechWiFi, Up: trace.WalkingWiFi(rng, duration),
			OneWayDelay: trace.DelayWiFi.MedianRTT / 2},
		{Name: "lte", Tech: trace.TechLTE, Up: trace.WalkingLTE(rng, duration),
			OneWayDelay: trace.DelayLTE.MedianRTT / 2},
	}
}

// DefaultThresholds is the recommended production setting (the shape the
// paper's (95, 80) calibration yields).
var DefaultThresholds = core.DefaultThresholds
