package xlink

import (
	"encoding/json"
	"net"
	"net/http"

	"repro/internal/obs"
)

// debugState is the JSON document served at /debug: a consistent snapshot
// of the connection taken under the endpoint lock, plus the flight
// recorder's anomaly post-mortems.
type debugState struct {
	State       string          `json:"state"`
	Established bool            `json:"established"`
	Terminated  bool            `json:"terminated"`
	Stats       json.RawMessage `json:"stats"`
	Scorecard   scorecardJSON   `json:"scorecard"`
	Anomalies   uint64          `json:"anomalies"`
	FirstReason string          `json:"first_anomaly,omitempty"`
	Dumps       []anomalyJSON   `json:"anomaly_dumps,omitempty"`
}

// scorecardJSON mirrors obs.Scorecard with JSON-friendly field names and
// durations in seconds.
type scorecardJSON struct {
	RCTSeconds        float64    `json:"rct_seconds"`
	Completed         bool       `json:"completed"`
	RebufferSeconds   float64    `json:"rebuffer_seconds"`
	RebufferCount     uint64     `json:"rebuffer_count"`
	QoEDecisions      uint64     `json:"qoe_decisions"`
	QoEEnables        uint64     `json:"qoe_enables"`
	QoETransitions    uint64     `json:"qoe_transitions"`
	StreamBytes       uint64     `json:"stream_bytes"`
	RtxBytes          uint64     `json:"rtx_bytes"`
	ReinjBytes        uint64     `json:"reinj_bytes"`
	FECRecoveredBytes uint64     `json:"fec_recovered_bytes"`
	CloseCode         uint64     `json:"close_code"`
	Paths             []pathJSON `json:"paths"`
}

type pathJSON struct {
	ID           uint64 `json:"id"`
	SentPackets  uint64 `json:"sent_packets"`
	LostPackets  uint64 `json:"lost_packets"`
	SentBytes    uint64 `json:"sent_bytes"`
	ReinjBytes   uint64 `json:"reinj_bytes"`
	UtilPermille uint64 `json:"util_permille"`
	LossPermille uint64 `json:"loss_permille"`
}

// anomalyJSON serializes one flight-recorder dump; Events is the NDJSON
// window as text (json.Marshal would base64 the []byte).
type anomalyJSON struct {
	Reason      string  `json:"reason"`
	TimeSeconds float64 `json:"time_seconds"`
	Events      string  `json:"events"`
}

func scorecardToJSON(card obs.Scorecard) scorecardJSON {
	out := scorecardJSON{
		RCTSeconds:        card.RCT.Seconds(),
		Completed:         card.Completed,
		RebufferSeconds:   card.RebufferTime.Seconds(),
		RebufferCount:     card.RebufferCount,
		QoEDecisions:      card.QoEDecisions,
		QoEEnables:        card.QoEEnables,
		QoETransitions:    card.QoETransitions,
		StreamBytes:       card.StreamBytes,
		RtxBytes:          card.RtxBytes,
		ReinjBytes:        card.ReinjBytes,
		FECRecoveredBytes: card.FECRecoveredBytes,
		CloseCode:         card.CloseCode,
		Paths:             []pathJSON{},
	}
	for i := 0; i < card.NumPaths; i++ {
		p := card.Paths[i]
		out.Paths = append(out.Paths, pathJSON{
			ID: p.ID, SentPackets: p.SentPackets, LostPackets: p.LostPackets,
			SentBytes: p.SentBytes, ReinjBytes: p.ReinjBytes,
			UtilPermille: p.UtilPermille, LossPermille: p.LossPermille,
		})
	}
	return out
}

// DebugHandler returns an http.Handler exposing the endpoint's telemetry:
//
//	/metrics — the metric registry in Prometheus text exposition
//	/debug   — a JSON snapshot: lifecycle state, transport counters, the
//	           current scorecard, and any flight-recorder anomaly dumps
//
// /metrics reads only the internally-synchronized registry and never takes
// the endpoint lock; /debug snapshots under the lock, so it is safe (if
// momentarily serializing) to scrape while the connection moves data.
// Mount it on a server you own the lifetime of — ServeDebug below does
// exactly that — rather than a fire-and-forget ListenAndServe goroutine,
// which has no shutdown path.
func (ep *Endpoint) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		ep.Metrics().Dump(w)
	})
	mux.HandleFunc("/debug", func(w http.ResponseWriter, r *http.Request) {
		ep.mu.Lock()
		stats, _ := json.Marshal(ep.conn.Stats())
		st := debugState{
			State:       ep.conn.StateName(),
			Established: ep.conn.Established(),
			Terminated:  ep.conn.Terminated(),
			Stats:       stats,
			Scorecard:   scorecardToJSON(ep.scorecardLocked()),
		}
		fr := ep.trace.Flight()
		st.Anomalies = fr.Anomalies()
		st.FirstReason = fr.FirstAnomaly()
		for _, d := range fr.Dumps() {
			st.Dumps = append(st.Dumps, anomalyJSON{
				Reason:      d.Reason,
				TimeSeconds: d.Time.Seconds(),
				Events:      string(d.Events),
			})
		}
		ep.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	return mux
}

// ServeDebug binds addr (e.g. "127.0.0.1:0") and serves DebugHandler from a
// background goroutine with a provable exit: the returned stop function
// closes the server's listener, which makes Serve return, and then waits on
// the goroutine's exited channel before returning. Callers therefore cannot
// leak the scrape server — the shape xlinkvet's goleak rule asks for. The
// bound address is returned so tests and operators can bind port 0.
func (ep *Endpoint) ServeDebug(addr string) (string, func(), error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: ep.DebugHandler()}
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		srv.Serve(ln)
	}()
	stop := func() {
		srv.Close()
		<-exited
	}
	return ln.Addr().String(), stop, nil
}
