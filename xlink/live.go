package xlink

import (
	"fmt"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/assert"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/qoe"
	"repro/internal/sim"
	"repro/internal/transport"
	"repro/internal/wire"
)

// realEnv adapts wall-clock time and time.AfterFunc timers to the
// transport's event-driven environment. All connection entry points are
// serialized by a mutex owned by the Endpoint; user callbacks are deferred
// until the lock is released (see Endpoint.flushCallbacks) so they can
// safely call back into the endpoint. This is the real-time boundary of
// the deterministic core: time flows in only through sim.RealClock and the
// timer wheel below.
type realEnv struct {
	clock *sim.RealClock
	ep    *Endpoint
}

// Now implements transport.Env.
func (e realEnv) Now() time.Duration { return e.clock.Now() }

// Schedule implements transport.Env.
func (e realEnv) Schedule(at time.Duration, fn func(now time.Duration)) func() {
	delay := at - e.Now()
	if delay < 0 {
		delay = 0
	}
	//xlinkvet:ignore determinism — real-time adapter: timers must fire on the wall clock
	t := time.AfterFunc(delay, func() {
		e.ep.mu.Lock()
		// Timer callbacks are the transport's own event-loop turns; they run
		// under the endpoint lock like every other entry point, and anything
		// user-visible they produce is deferred through cbQ.
		fn(e.Now()) //xlinkvet:ignore lockheld — transport-internal timer body, not a user callback
		e.ep.mu.Unlock()
		e.ep.flushCallbacks()
	})
	return func() { t.Stop() }
}

// Endpoint is a live XLINK endpoint over real UDP sockets: a server with
// one socket, or a multi-homed client with one socket per interface.
type Endpoint struct {
	mu   sync.Mutex
	env  realEnv
	conn *transport.Conn // xlinkvet:guardedby mu
	// xlinkvet:guardedby mu
	socks []*net.UDPConn
	// xlinkvet:guardedby mu
	peer []*net.UDPAddr // per netIdx: where to send (client side / learned)
	// trace is always non-nil once the endpoint is published: the user's
	// Tracer when one was configured, otherwise an internal ring-only
	// flight trace — either way with a flight recorder attached, so a live
	// connection keeps a last-N event ring for anomaly post-mortems
	// (DESIGN.md §14). Emitted to under mu.
	// xlinkvet:guardedby mu
	trace *obs.Trace
	// userTrace records whether cfg.Tracer was supplied; TraceBytes keeps
	// its nil-return contract when it was not.
	userTrace bool
	// label is this side's trace origin ("client" or "server").
	label string
	// ctrl is the Alg. 1 controller when the scheme wires one (server
	// side); driven by the transport under mu.
	ctrl *qoe.Controller // xlinkvet:guardedby mu
	// closed gates the one-shot scorecard emission at Close.
	closed bool // xlinkvet:guardedby mu
	done   chan struct{}
	// cbQ holds user callbacks raised while the lock was held; they run
	// after release so they may re-enter the endpoint. flushing marks the
	// goroutine currently draining cbQ so a second flusher (each readLoop,
	// the timer goroutine, and every API entry point flush) cannot pop a
	// later callback and run it ahead of an earlier one — user callbacks
	// must observe stream data in delivery order.
	cbQ      []func() // xlinkvet:guardedby mu
	flushing bool     // xlinkvet:guardedby mu
	// shard is the event loop this endpoint's packets are processed on,
	// assigned once at creation (before any readLoop starts) and immutable
	// after. ownedLoops is the private single-shard group created when the
	// user supplied no LiveConfig.Loops; Close signals it.
	shard      *eventLoopShard
	ownedLoops *EventLoopGroup
}

// enqueueCallback defers a user callback; the endpoint lock must be held.
// It is invoked only from the transport callback wrappers installed by
// applyLive, and the transport itself only runs under ep.mu (every entry
// point in this file locks before calling in), so the guard holds — but the
// proof is one hop beyond what the analyzer's caller credit covers.
func (ep *Endpoint) enqueueCallback(fn func()) {
	ep.cbQ = append(ep.cbQ, fn) //xlinkvet:ignore guardedby — transport-invoked under ep.mu; see comment above
}

// flushCallbacks runs deferred user callbacks outside the lock, in order.
// Only one goroutine drains at a time: a concurrent caller returns
// immediately and leaves its callbacks to the active drainer, which loops
// until the queue is empty. Without that exclusivity two flushers could
// each pop a callback and race to run them, reordering OnStreamData
// deliveries under scheduler pressure.
func (ep *Endpoint) flushCallbacks() {
	ep.mu.Lock()
	if ep.flushing {
		ep.mu.Unlock()
		return
	}
	ep.flushing = true
	for len(ep.cbQ) > 0 {
		fn := ep.cbQ[0]
		ep.cbQ = ep.cbQ[1:]
		ep.mu.Unlock()
		fn()
		ep.mu.Lock()
	}
	ep.flushing = false
	ep.mu.Unlock()
}

// Stream is the sending half of a stream on a live endpoint. It wraps the
// transport stream with the endpoint lock, making it safe to use from any
// goroutine — the transport itself is single-threaded by design. See the
// internal documentation for WriteFrame's video-frame priority semantics.
type Stream struct {
	ep *Endpoint
	s  *transport.SendStream // xlinkvet:guardedby ep.mu
}

// ID returns the stream ID.
func (st *Stream) ID() uint64 {
	st.ep.mu.Lock()
	defer st.ep.mu.Unlock()
	return st.s.ID()
}

// Write queues data for sending.
//
// The lockheld suppressions on the transport calls below (and in Close,
// AbandonPath, readLoop, Dial and Endpoint.Close) share one justification:
// the endpoint deliberately drives the single-threaded transport under
// ep.mu. Callbacks the transport may invoke on that path are either
// deferred through cbQ by the applyLive wrappers (OnStreamData,
// OnStreamOpen, OnHandshakeDone) or synchronous pure providers
// (QoEProvider, CCFactory) that do not re-enter the endpoint; OnClosed is
// never installed in live mode.
func (st *Stream) Write(data []byte) {
	st.ep.mu.Lock()
	st.s.Write(data) //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Write doc
	st.ep.mu.Unlock()
	st.ep.flushCallbacks()
}

// WriteFrame queues one video frame with a priority.
func (st *Stream) WriteFrame(data []byte, prio int) {
	st.ep.mu.Lock()
	st.s.WriteFrame(data, prio) //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Write doc
	st.ep.mu.Unlock()
	st.ep.flushCallbacks()
}

// SetPriority sets the stream priority.
func (st *Stream) SetPriority(p int) {
	st.ep.mu.Lock()
	st.s.SetPriority(p)
	st.ep.mu.Unlock()
}

// Close marks the stream finished after all queued data.
func (st *Stream) Close() {
	st.ep.mu.Lock()
	st.s.Close() //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Write doc
	st.ep.mu.Unlock()
	st.ep.flushCallbacks()
}

// Reset abandons the stream with an error code.
func (st *Stream) Reset(code uint64) {
	st.ep.mu.Lock()
	st.s.Reset(code)
	st.ep.mu.Unlock()
	st.ep.flushCallbacks()
}

// RecvStream is the receiving half of a stream.
type RecvStream = transport.RecvStream

// LiveConfig configures a live endpoint.
type LiveConfig struct {
	// Scheme and Options select the transport behaviour.
	Scheme  Scheme
	Options Options
	// PSK must match between client and server (stands in for TLS; see
	// DESIGN.md).
	PSK []byte
	// OnStreamData receives in-order stream data.
	OnStreamData func(now time.Duration, s *RecvStream, data []byte, fin bool)
	// OnStreamOpen announces peer-initiated streams.
	OnStreamOpen func(now time.Duration, s *RecvStream)
	// OnHandshakeDone fires once the connection is established.
	OnHandshakeDone func(now time.Duration)
	// QoEProvider supplies client player feedback.
	QoEProvider func() QoESignal
	// Tracer, when set, collects the connection's structured event stream.
	// The trace is driven under the endpoint mutex (obs.Trace itself is
	// goroutine-confined; only its Registry is internally synchronized);
	// read it with Endpoint.TraceBytes, which snapshots under the same
	// lock. Timestamps come from the endpoint's monotonic clock, so live
	// traces are time-consistent but — unlike sim traces — not
	// byte-reproducible across runs. nil skips the NDJSON stream but not
	// the flight recorder: the endpoint always keeps a last-N event ring
	// and a metric registry (see DebugHandler).
	Tracer *obs.Trace
	Seed   int64
	// Loops, when set, shards this endpoint's packet processing onto a
	// shared EventLoopGroup (one endpoint maps to one shard, round-robin).
	// Server fleets share one per-core group so N endpoints cost N socket
	// readers plus a fixed number of event loops, not N processing
	// goroutines. nil gives the endpoint a private single-shard group that
	// its Close tears down.
	Loops *EventLoopGroup
}

// Listen starts a live server endpoint on addr (e.g. "127.0.0.1:4242").
func Listen(addr string, cfg LiveConfig) (*Endpoint, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	sock, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	ep := newEndpoint([]*net.UDPConn{sock})
	ep.attachLoops(cfg.Loops)
	x := core.New(cfg.Scheme, cfg.Options)
	tcfg := x.ServerConfig(cfg.Seed)
	tr := applyLive(ep, &tcfg, cfg)
	conn := transport.NewConn(ep.env, ep, tcfg)
	ep.mu.Lock()
	ep.trace = tr
	ep.userTrace = cfg.Tracer != nil
	ep.ctrl = x.Controller
	ep.conn = conn
	ep.mu.Unlock()
	go ep.readLoop(0, sock)
	return ep, nil
}

// Dial starts a live client endpoint connecting every local interface
// (one "ifaceAddrs" local bind per path, which may be ":0") to the remote
// server.
func Dial(remote string, ifaceAddrs []string, techs []Technology, cfg LiveConfig) (*Endpoint, error) {
	if len(ifaceAddrs) == 0 || len(ifaceAddrs) != len(techs) {
		return nil, fmt.Errorf("xlink: need one local address and technology per interface")
	}
	raddr, err := net.ResolveUDPAddr("udp", remote)
	if err != nil {
		return nil, err
	}
	var socks []*net.UDPConn
	for _, la := range ifaceAddrs {
		laddr, err := net.ResolveUDPAddr("udp", la)
		if err != nil {
			return nil, err
		}
		sock, err := net.ListenUDP("udp", laddr)
		if err != nil {
			return nil, err
		}
		socks = append(socks, sock)
	}
	ep := newEndpoint(socks)
	ep.attachLoops(cfg.Loops)
	peers := make([]*net.UDPAddr, 0, len(socks))
	for range socks {
		peers = append(peers, raddr)
	}
	x := core.New(cfg.Scheme, cfg.Options)
	tcfg := x.ClientConfig(cfg.Seed)
	tcfg.IsClient = true
	tr := applyLive(ep, &tcfg, cfg)
	conn := transport.NewConn(ep.env, ep, tcfg)
	for i, tech := range techs {
		conn.AddInterface(i, tech)
	}
	ep.mu.Lock()
	ep.trace = tr
	ep.userTrace = cfg.Tracer != nil
	ep.ctrl = x.Controller
	ep.peer = peers
	ep.conn = conn
	err = conn.Start() //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Stream.Write doc
	ep.mu.Unlock()
	ep.flushCallbacks()
	if err != nil {
		ep.Close()
		return nil, err
	}
	for i, sock := range socks {
		//xlinkvet:bounded one reader per dialed interface, joined by Close via ep.done; readLoop exits when its socket is closed
		go ep.readLoop(i, sock)
	}
	return ep, nil
}

func newEndpoint(socks []*net.UDPConn) *Endpoint {
	ep := &Endpoint{
		socks: socks,
		peer:  make([]*net.UDPAddr, 0, len(socks)),
		done:  make(chan struct{}),
	}
	ep.env = realEnv{clock: sim.NewRealClock(), ep: ep}
	return ep
}

// attachLoops binds the endpoint to a shard of the given group, creating a
// private single-shard group when the user supplied none. Must run before
// any readLoop starts (shard is immutable after publication).
func (ep *Endpoint) attachLoops(g *EventLoopGroup) {
	if g == nil {
		g = NewEventLoopGroup(1)
		ep.ownedLoops = g
	}
	ep.shard = g.attach()
}

// applyLive copies the user callbacks into the transport config, wrapping
// each so it is deferred past the endpoint lock, and resolves the trace:
// the user's Tracer or an internal ring-only flight trace, either way with
// a flight recorder attached. It returns the trace for Listen/Dial to
// assign under the lock; it must run before the endpoint is published.
func applyLive(ep *Endpoint, tcfg *transport.Config, cfg LiveConfig) *obs.Trace {
	if len(cfg.PSK) > 0 {
		tcfg.PSK = cfg.PSK
	}
	if fn := cfg.OnStreamData; fn != nil {
		tcfg.OnStreamData = func(now time.Duration, s *transport.RecvStream, data []byte, fin bool) {
			ep.enqueueCallback(func() { fn(now, s, data, fin) })
		}
	}
	if fn := cfg.OnStreamOpen; fn != nil {
		tcfg.OnStreamOpen = func(now time.Duration, s *transport.RecvStream) {
			ep.enqueueCallback(func() { fn(now, s) })
		}
	}
	if fn := cfg.OnHandshakeDone; fn != nil {
		tcfg.OnHandshakeDone = func(now time.Duration) {
			ep.enqueueCallback(func() { fn(now) })
		}
	}
	if cfg.QoEProvider != nil {
		// The provider is a pure read; it runs inline (no re-entrancy).
		tcfg.QoEProvider = func() wire.QoESignal { return cfg.QoEProvider() }
	}
	label := "server"
	if tcfg.IsClient {
		label = "client"
	}
	ep.label = label
	tr := cfg.Tracer
	if tr == nil {
		tr = obs.NewFlightTrace("live-"+label, 0)
	}
	tr.AttachFlightRecorder(0)
	tcfg.Tracer = tr.Origin(label)
	return tr
}

// SendDatagram implements transport.DatagramSender over the sockets. The
// transport only invokes it while the endpoint holds ep.mu (every entry
// point in this file locks before driving the connection), so the guarded
// fields are safe to read here — taking the lock again would self-deadlock.
// That inversion (callee relies on its caller's caller holding the lock) is
// beyond the analyzer's one-level caller credit, hence the suppression.
func (ep *Endpoint) SendDatagram(netIdx int, data []byte) {
	socks, peer := ep.socks, ep.peer //xlinkvet:ignore guardedby — invoked by the transport under ep.mu; see doc comment
	if netIdx >= len(socks) {
		return
	}
	if netIdx < len(peer) && peer[netIdx] != nil {
		socks[netIdx].WriteToUDP(data, peer[netIdx])
	}
}

// SendBatch implements transport.DatagramSender's bulk form: one write per
// packet on the interface's socket (the stdlib exposes no sendmmsg, so the
// syscall batching point stays behind this single seam), returning how many
// were written. The transport-side win — one virtual dispatch and one
// flush per batch — is independent of the syscall count. Invoked under
// ep.mu like SendDatagram.
//
// xlinkvet:loan pkts
func (ep *Endpoint) SendBatch(netIdx int, pkts [][]byte) int {
	socks, peer := ep.socks, ep.peer //xlinkvet:ignore guardedby — invoked by the transport under ep.mu; see SendDatagram doc
	if netIdx >= len(socks) || netIdx >= len(peer) || peer[netIdx] == nil {
		return 0
	}
	sent := 0
	for _, d := range pkts {
		if _, err := socks[netIdx].WriteToUDP(d, peer[netIdx]); err == nil {
			sent++
		}
	}
	return sent
}

// readBufSize fits any datagram the transport seals (MaxDatagramSize plus
// headroom); every ring buffer is this large.
const readBufSize = 2048

// liveBatchSize caps how many raw packets one shard turn drains into a
// single locked HandleDatagramBatch pass.
const liveBatchSize = 16

// rawPacket is one datagram handed from a socket reader to its endpoint's
// shard. buf is a ring buffer on loan from the shard's free list: the shard
// returns it after the batch is delivered, and the transport's receive
// boundary (see transport.DatagramSender's ownership note) guarantees the
// connection does not retain it past HandleDatagramBatch.
type rawPacket struct {
	ep   *Endpoint
	sock int // receiving socket's netIdx (client); servers resolve per packet
	from *net.UDPAddr
	buf  []byte
}

// EventLoopGroup shards live-endpoint packet processing across per-core
// event loops. Socket readers never touch a connection: they post raw
// packets to their endpoint's shard over a channel (the lock-free handoff),
// and the shard goroutine drains up to liveBatchSize packets per turn,
// delivering each endpoint's run as one HandleDatagramBatch under one lock
// acquisition. Endpoints attach round-robin at creation, so all traffic for
// a connection stays on one shard and batches form naturally under load.
//
// A group may be shared by many endpoints (LiveConfig.Loops); endpoints
// without one get a private single-shard group. Close the endpoints first,
// then the group: Close signals the shard goroutines to exit and Wait joins
// them.
type EventLoopGroup struct {
	shards []*eventLoopShard
	next   atomic.Uint64
	wg     sync.WaitGroup
	done   chan struct{}
	closed atomic.Bool
}

// eventLoopShard is one event loop: an inbound raw-packet channel and the
// buffer free list backing its readers. in is written by socket readers and
// drained only by the shard goroutine; free recycles ring buffers between
// the two. Neither channel is ever closed — lifecycle runs through the
// group's done channel.
type eventLoopShard struct {
	in   chan rawPacket
	free chan []byte
}

// NewEventLoopGroup starts a group of n shard goroutines (n <= 0 means one
// per CPU core).
func NewEventLoopGroup(n int) *EventLoopGroup {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	g := &EventLoopGroup{done: make(chan struct{})}
	for i := 0; i < n; i++ {
		ring := 4 * liveBatchSize
		sh := &eventLoopShard{
			in:   make(chan rawPacket, ring),
			free: make(chan []byte, ring),
		}
		for j := 0; j < ring; j++ {
			sh.free <- make([]byte, readBufSize)
		}
		g.shards = append(g.shards, sh)
		g.wg.Add(1)
		//xlinkvet:bounded one goroutine per shard, joined by Close/Wait via g.done and g.wg
		go g.run(sh)
	}
	return g
}

// Close signals every shard goroutine to exit after its current batch. It
// does not wait (an endpoint callback may Close re-entrantly from a shard
// goroutine); use Wait to join.
//
// xlinkvet:owns done
func (g *EventLoopGroup) Close() {
	if g.closed.CompareAndSwap(false, true) {
		close(g.done)
	}
}

// Wait joins the shard goroutines after Close. Must not be called from a
// shard-delivered callback (it would wait on itself).
func (g *EventLoopGroup) Wait() { g.wg.Wait() }

// attach assigns the next endpoint to a shard, round-robin.
func (g *EventLoopGroup) attach() *eventLoopShard {
	return g.shards[int(g.next.Add(1)-1)%len(g.shards)]
}

// takeBuf hands a ring buffer to a socket reader, falling back to a fresh
// allocation when the ring is exhausted (slow shard under burst load) so
// readers never deadlock against their own consumer.
func (sh *eventLoopShard) takeBuf() []byte {
	select {
	case buf := <-sh.free:
		return buf
	default:
		//xlinkvet:ignore hotalloc — ring exhausted under burst: grow instead of blocking the reader
		return make([]byte, readBufSize)
	}
}

// recycle returns a ring buffer to the free list, dropping it when the list
// is full (it was an overflow allocation).
func (sh *eventLoopShard) recycle(buf []byte) {
	select {
	case sh.free <- buf[:cap(buf)]:
	default:
	}
}

// run is one shard's event loop: block for the first packet of a turn,
// opportunistically drain whatever else is already queued (up to
// liveBatchSize), and deliver the turn as per-endpoint batches. This is the
// per-batch hot loop: its steady state allocates nothing — buffers come
// from the ring and the batch scratch is reused across turns.
//
// xlinkvet:hot
func (g *EventLoopGroup) run(sh *eventLoopShard) {
	defer g.wg.Done()
	//xlinkvet:ignore hotalloc — per-shard scratch, allocated once at goroutine start and reused every turn
	batch := make([]rawPacket, 0, liveBatchSize)
	//xlinkvet:ignore hotalloc — per-shard scratch, allocated once at goroutine start and reused every turn
	pkts := make([][]byte, 0, liveBatchSize)
	for {
		select {
		case <-g.done:
			return
		case rp := <-sh.in:
			batch = append(batch[:0], rp)
		drain:
			for len(batch) < liveBatchSize {
				select {
				case rp2 := <-sh.in:
					batch = append(batch, rp2)
				default:
					break drain
				}
			}
			sh.dispatch(batch, &pkts)
		}
	}
}

// dispatch splits a turn's packets into contiguous per-endpoint runs,
// delivers each run under that endpoint's lock, and recycles the ring
// buffers.
//
// xlinkvet:hot
func (sh *eventLoopShard) dispatch(batch []rawPacket, pkts *[][]byte) {
	i := 0
	for i < len(batch) {
		ep := batch[i].ep
		j := i + 1
		for j < len(batch) && batch[j].ep == ep {
			j++
		}
		ep.deliverBatch(batch[i:j], pkts)
		i = j
	}
	for k := range batch {
		sh.recycle(batch[k].buf)
		batch[k] = rawPacket{}
	}
}

// deliverBatch ingests one endpoint's run of raw packets under a single
// lock acquisition, grouping contiguous same-interface packets into
// HandleDatagramBatch calls. Servers resolve the interface index per packet
// (learnPeerLocked needs ep.mu, which is held here).
//
// xlinkvet:hot
func (ep *Endpoint) deliverBatch(run []rawPacket, pkts *[][]byte) {
	ep.mu.Lock()
	now := ep.env.Now()
	isClient := ep.conn.IsClient()
	i := 0
	for i < len(run) {
		idx := run[i].sock
		if !isClient {
			idx = ep.learnPeerLocked(run[i].from)
		}
		//xlinkvet:ignore hotalloc — pkts is the shard's per-turn scratch; capacity tops out at liveBatchSize and is reused
		ps := append((*pkts)[:0], run[i].buf)
		j := i + 1
		for j < len(run) {
			jdx := run[j].sock
			if !isClient {
				jdx = ep.learnPeerLocked(run[j].from)
			}
			if jdx != idx {
				break
			}
			ps = append(ps, run[j].buf) //xlinkvet:ignore hotalloc — shard scratch; see above
			j++
		}
		ep.conn.HandleDatagramBatch(now, idx, ps) //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Stream.Write doc
		*pkts = ps[:0]
		i = j
	}
	ep.mu.Unlock()
	ep.flushCallbacks()
}

// readLoop pumps one socket into the endpoint's shard. It owns no
// connection state: each datagram lands in a ring buffer on loan from the
// shard's free list and is posted over the handoff channel; the shard
// returns the buffer after delivery (see rawPacket). Compared to the old
// per-packet make+copy+lock loop, the steady state here allocates nothing
// but the kernel's source address.
//
// xlinkvet:hot
func (ep *Endpoint) readLoop(netIdx int, sock *net.UDPConn) {
	sh := ep.shard
	for {
		buf := sh.takeBuf()
		n, from, err := sock.ReadFromUDP(buf)
		if err != nil {
			sh.recycle(buf)
			return // socket closed by Endpoint.Close
		}
		select {
		case sh.in <- rawPacket{ep: ep, sock: netIdx, from: from, buf: buf[:n]}:
		case <-ep.done:
			sh.recycle(buf)
			return
		}
	}
}

// learnPeerLocked maps a client source address to a stable interface
// index, appending new addresses as new paths.
func (ep *Endpoint) learnPeerLocked(from *net.UDPAddr) int {
	for i, p := range ep.peer {
		if p != nil && p.IP.Equal(from.IP) && p.Port == from.Port {
			return i
		}
	}
	ep.peer = append(ep.peer, from)
	for len(ep.socks) < len(ep.peer) {
		// Server replies out of its single socket regardless of index.
		ep.socks = append(ep.socks, ep.socks[0])
	}
	assert.That(len(ep.socks) >= len(ep.peer), "peer table outgrew socket table")
	return len(ep.peer) - 1
}

// OpenStream opens a new stream.
func (ep *Endpoint) OpenStream() *Stream {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return &Stream{ep: ep, s: ep.conn.OpenStream()}
}

// StreamFor returns (creating if needed) the send half of a stream ID —
// how a server responds on a client-initiated stream.
func (ep *Endpoint) StreamFor(id uint64) *Stream {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return &Stream{ep: ep, s: ep.conn.Stream(id)}
}

// AbandonPath closes one path of a live connection explicitly — e.g. the
// app detected that Wi-Fi was switched off (Sec 6, "Path close").
func (ep *Endpoint) AbandonPath(id uint64) {
	ep.mu.Lock()
	ep.conn.AbandonPath(id) //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Stream.Write doc
	ep.mu.Unlock()
	ep.flushCallbacks()
}

// Established reports handshake completion.
func (ep *Endpoint) Established() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.conn.Established()
}

// Stats returns a copy of the transport counters, taken under the endpoint
// lock. The transport.Conn itself is lock-free and event-loop-confined;
// every cross-goroutine read must go through one of these locked accessors
// (the ConnStats value type has no reference fields, so the copy is a
// consistent snapshot).
func (ep *Endpoint) Stats() transport.ConnStats {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.conn.Stats()
}

// StateName returns the connection lifecycle state, read under the lock.
func (ep *Endpoint) StateName() string {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.conn.StateName()
}

// Terminated reports terminal closure, read under the lock.
func (ep *Endpoint) Terminated() bool {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.conn.Terminated()
}

// TraceBytes snapshots the NDJSON trace accumulated so far (nil when no
// Tracer was configured — the internal flight trace keeps a ring, not a
// stream). The copy is taken under the endpoint lock, so it is safe to
// call while the connection is live.
func (ep *Endpoint) TraceBytes() []byte {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	if !ep.userTrace {
		return nil
	}
	return append([]byte(nil), ep.trace.Bytes()...)
}

// Metrics returns the endpoint's metric registry (the trace's registry; an
// internal one when no Tracer was configured). The registry is internally
// synchronized, so callers may read it from any goroutine.
func (ep *Endpoint) Metrics() *obs.Registry {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.trace.Registry()
}

// Scorecard composes the connection's per-session QoE rollup as of now:
// the transport base (lane attribution, per-path utilization/loss) plus
// Alg. 1 activity when this side runs the controller. The player-level
// fields (RCT, rebuffer, Completed) are the application's to fill — a live
// endpoint moves bytes, not video.
func (ep *Endpoint) Scorecard() obs.Scorecard {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	return ep.scorecardLocked()
}

func (ep *Endpoint) scorecardLocked() obs.Scorecard {
	card := ep.conn.Scorecard()
	if c := ep.ctrl; c != nil {
		card.QoEDecisions, card.QoEEnables = c.Stats()
		card.QoETransitions = c.Transitions()
	}
	return card
}

// LocalAddrs returns the bound socket addresses.
func (ep *Endpoint) LocalAddrs() []net.Addr {
	ep.mu.Lock()
	defer ep.mu.Unlock()
	out := make([]net.Addr, len(ep.socks))
	for i, s := range ep.socks {
		out[i] = s.LocalAddr()
	}
	return out
}

// Close shuts the endpoint down. The first Close emits the connection's
// scorecard (conn:scorecard) and merges it into the registry, so /metrics
// served after shutdown carries the session rollup.
//
// xlinkvet:owns done
// xlinkvet:state active,closing -> closed
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if ep.conn != nil {
		if !ep.closed {
			ep.closed = true
			card := ep.scorecardLocked()
			ep.trace.Origin(ep.label).Scorecard(ep.env.Now(), &card) //xlinkvet:ignore lockheld — the live trace is driven under ep.mu by design; see Stream.Write doc
			ep.trace.Registry().MergeScorecard(&card)
		}
		ep.conn.Close(0, "closed") //xlinkvet:ignore lockheld — transport driven under ep.mu by design; see Stream.Write doc
	}
	// Snapshot under the lock: the server side appends to ep.socks as it
	// learns client addresses (learnPeerLocked), and done may be closed by
	// a concurrent Close.
	socks := append([]*net.UDPConn(nil), ep.socks...)
	select {
	case <-ep.done:
	default:
		close(ep.done)
	}
	ep.mu.Unlock()
	for _, s := range socks {
		s.Close()
	}
	// A privately owned event loop group dies with its endpoint; Close only
	// signals (a user callback may Close re-entrantly from the shard
	// goroutine), the goroutine exits after its current batch.
	if ep.ownedLoops != nil {
		ep.ownedLoops.Close()
	}
}
