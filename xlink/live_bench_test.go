package xlink

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Tests and benchmarks for the sharded live event loop (DESIGN.md §16).
// The ISSUE's nominal 10k-connection fleet is infeasible under the default
// file-descriptor limit (each client pair costs 3 sockets and the process
// cap is ~1024), so the fleet here is modest and the scaling claim is about
// the shape: N endpoints share a fixed number of event-loop goroutines, so
// processing cost grows with traffic, not with endpoint count.

// fleetPair is one live client/server connection through a shared group.
type fleetPair struct {
	server, client *Endpoint
	recvBytes      atomic.Uint64
	fins           atomic.Uint64
}

// newFleet dials n live pairs over loopback, all sharing group (nil gives
// each endpoint its private single-shard group). Every pair is established
// before return.
func newFleet(tb testing.TB, n int, group *EventLoopGroup) []*fleetPair {
	tb.Helper()
	pairs := make([]*fleetPair, n)
	for i := range pairs {
		fp := &fleetPair{}
		pairs[i] = fp
		server, err := Listen("127.0.0.1:0", LiveConfig{
			Scheme: SchemeXLINK,
			Loops:  group,
			OnStreamData: func(now time.Duration, s *RecvStream, data []byte, fin bool) {
				fp.recvBytes.Add(uint64(len(data)))
				if fin {
					fp.fins.Add(1)
				}
			},
			Seed: int64(100 + i),
		})
		if err != nil {
			tb.Fatal(err)
		}
		fp.server = server
		handshake := make(chan struct{})
		client, err := Dial(server.LocalAddrs()[0].String(),
			[]string{"127.0.0.1:0", "127.0.0.1:0"},
			[]Technology{TechWiFi, TechLTE}, LiveConfig{
				Scheme:          SchemeXLINK,
				Loops:           group,
				OnHandshakeDone: func(now time.Duration) { close(handshake) },
				Seed:            int64(200 + i),
			})
		if err != nil {
			server.Close()
			tb.Fatal(err)
		}
		fp.client = client
		select {
		case <-handshake:
		case <-time.After(10 * time.Second):
			tb.Fatalf("pair %d: handshake timed out", i)
		}
	}
	return pairs
}

func closeFleet(pairs []*fleetPair) {
	for _, fp := range pairs {
		fp.client.Close()
		fp.server.Close()
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(tb testing.TB, d time.Duration, cond func() bool, what string) {
	tb.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			tb.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestLiveShardedEventLoop drives a fleet of live connections through one
// shared multi-shard EventLoopGroup concurrently — writers on their own
// goroutines, shard goroutines batching into the transports, endpoints
// closing while the group keeps serving the rest. scripts/check.sh runs
// this under -race: the channel handoff between socket readers and shard
// loops, the per-endpoint locking in deliverBatch, and the group lifecycle
// are exactly the kind of concurrency the detector must see clean.
func TestLiveShardedEventLoop(t *testing.T) {
	group := NewEventLoopGroup(4)
	const pairs = 6
	fleet := newFleet(t, pairs, group)
	defer closeFleet(fleet)

	const payload = 96 << 10
	msg := make([]byte, payload)
	for i := range msg {
		msg[i] = byte(i)
	}
	var wg sync.WaitGroup
	for _, fp := range fleet {
		fp := fp
		wg.Add(1)
		go func() {
			defer wg.Done()
			st := fp.client.OpenStream()
			// Chunked writes from a foreign goroutine: the endpoint lock is
			// the only thing between this writer and the shard loops.
			for off := 0; off < payload; off += 8 << 10 {
				end := off + 8<<10
				if end > payload {
					end = payload
				}
				st.Write(msg[off:end])
			}
			st.Close()
		}()
	}
	wg.Wait()
	for i, fp := range fleet {
		fp := fp
		waitFor(t, 20*time.Second, func() bool { return fp.fins.Load() == 1 },
			fmt.Sprintf("pair %d fin (got %d bytes)", i, fp.recvBytes.Load()))
		if got := fp.recvBytes.Load(); got != payload {
			t.Errorf("pair %d: server received %d bytes, want %d", i, got, payload)
		}
	}

	closeFleet(fleet)
	group.Close()
	done := make(chan struct{})
	go func() { group.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("shard goroutines did not exit after group Close")
	}
}

// BenchmarkLiveFleetEndpoints measures aggregate live throughput through a
// shared per-core EventLoopGroup: b.N messages of 1200 bytes spread
// round-robin over the fleet, timed until every byte has landed in a server
// callback. ns/op is the fleet-wide per-message cost — the macro number
// xlink-benchdiff tracks for the sharded live plane.
func BenchmarkLiveFleetEndpoints(b *testing.B) {
	group := NewEventLoopGroup(0) // one shard per core
	defer group.Close()
	const pairs = 16
	fleet := newFleet(b, pairs, group)
	defer closeFleet(fleet)

	msg := make([]byte, 1200)
	streams := make([]*Stream, pairs)
	for i, fp := range fleet {
		streams[i] = fp.client.OpenStream()
	}
	total := func() uint64 {
		var n uint64
		for _, fp := range fleet {
			n += fp.recvBytes.Load()
		}
		return n
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streams[i%pairs].Write(msg)
	}
	want := uint64(b.N) * uint64(len(msg))
	deadline := time.Now().Add(2 * time.Minute)
	for total() < want {
		if time.Now().After(deadline) {
			b.Fatalf("delivered %d of %d bytes before deadline", total(), want)
		}
		time.Sleep(time.Millisecond)
	}
	b.StopTimer()
}
