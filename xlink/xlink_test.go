package xlink

import (
	"bytes"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestEmulatedSessionAPI(t *testing.T) {
	res, err := RunEmulatedSession(SessionConfig{
		Scheme: SchemeXLINK,
		Paths:  TwoPathNetwork(10, 8, 40*time.Millisecond, 90*time.Millisecond),
		Video: Video{
			ID: "demo", Size: 2 << 20, BitrateBps: 2_000_000, FPS: 30,
			FirstFrameSize: 64 << 10,
		},
		Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || !res.Metrics.Finished {
		t.Fatalf("session incomplete: %+v", res.Metrics)
	}
	if res.Metrics.FirstFrameLatency <= 0 {
		t.Fatal("missing first frame latency")
	}
}

func TestEmulatedSessionDeterminism(t *testing.T) {
	cfg := SessionConfig{
		Scheme: SchemeXLINK,
		Paths:  WalkingTracePaths(7, 10*time.Second),
		Video:  Video{ID: "d", Size: 1 << 20, BitrateBps: 1_500_000, FPS: 30, FirstFrameSize: 48 << 10},
		Seed:   7,
	}
	a, err := RunEmulatedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Paths = WalkingTracePaths(7, 10*time.Second) // regenerate identically
	b, err := RunEmulatedSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.DownloadTime != b.DownloadTime || a.Metrics.RebufferTime != b.Metrics.RebufferTime {
		t.Fatalf("sessions not deterministic: %v/%v vs %v/%v",
			a.DownloadTime, a.Metrics.RebufferTime, b.DownloadTime, b.Metrics.RebufferTime)
	}
}

// TestLiveUDPTransfer runs the real-socket path: a server and a two-socket
// client on loopback moving half a megabyte.
func TestLiveUDPTransfer(t *testing.T) {
	payload := make([]byte, 512<<10)
	for i := range payload {
		payload[i] = byte(i)
	}

	var mu sync.Mutex
	var got bytes.Buffer
	doneCh := make(chan struct{})

	// Callbacks run on the endpoint's read-loop goroutine and can fire
	// before Listen/Dial return; the ready channels order the endpoint
	// variable writes before the closures read them.
	var server *Endpoint
	serverReady := make(chan struct{})
	server, err := Listen("127.0.0.1:0", LiveConfig{
		Scheme: SchemeXLINK,
		OnStreamData: func(now time.Duration, s *RecvStream, data []byte, fin bool) {
			// Request arrives: respond with the payload on the stream.
			if fin {
				<-serverReady
				ss := server.StreamFor(s.ID())
				ss.Write(payload)
				ss.Close()
			}
		},
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	close(serverReady)
	defer server.Close()

	addr := server.LocalAddrs()[0].String()
	handshakeCh := make(chan struct{})
	clientTrace := obs.NewTrace("live-client")
	client, err := Dial(addr, []string{"127.0.0.1:0", "127.0.0.1:0"},
		[]Technology{TechWiFi, TechLTE}, LiveConfig{
			Scheme: SchemeXLINK,
			Tracer: clientTrace,
			OnStreamData: func(now time.Duration, s *RecvStream, data []byte, fin bool) {
				mu.Lock()
				got.Write(data)
				done := fin
				mu.Unlock()
				if done {
					close(doneCh)
				}
			},
			OnHandshakeDone: func(now time.Duration) {
				close(handshakeCh)
			},
			Seed: 2,
		})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Concurrent observer: under -race this proves the locked accessors
	// (Stats/StateName/Terminated/TraceBytes snapshots) are safe to call
	// from any goroutine while the connection is moving data.
	readerStop := make(chan struct{})
	var readerDone sync.WaitGroup
	readerDone.Add(1)
	go func() {
		defer readerDone.Done()
		for {
			select {
			case <-readerStop:
				return
			default:
			}
			_ = client.Stats()
			_ = client.StateName()
			_ = client.Terminated()
			_ = client.TraceBytes()
			_ = server.Stats()
			_ = server.StateName()
			time.Sleep(time.Millisecond)
		}
	}()
	defer func() {
		close(readerStop)
		readerDone.Wait()
	}()

	select {
	case <-handshakeCh:
	case <-time.After(10 * time.Second):
		t.Fatal("handshake timed out")
	}
	s := client.OpenStream()
	s.Write([]byte("GET /video\n"))
	s.Close()

	select {
	case <-doneCh:
	case <-time.After(30 * time.Second):
		mu.Lock()
		n := got.Len()
		mu.Unlock()
		t.Fatalf("live transfer timed out with %d of %d bytes", n, len(payload))
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got.Bytes(), payload) {
		t.Fatalf("payload mismatch: got %d bytes", got.Len())
	}
	if !client.Established() || !server.Established() {
		t.Fatal("endpoints should be established")
	}
	if client.StateName() != "established" {
		t.Fatalf("client state %q, want established", client.StateName())
	}

	// The live trace must parse and contain the transport's core events.
	evs, err := obs.ParseBytes(client.TraceBytes())
	if err != nil {
		t.Fatalf("live trace does not parse: %v", err)
	}
	var sent, recv int
	for _, e := range evs {
		switch e.Name {
		case obs.EvPacketSent:
			sent++
		case obs.EvPacketReceived:
			recv++
		}
	}
	if sent == 0 || recv == 0 {
		t.Fatalf("live trace missing packet events: %d sent, %d received", sent, recv)
	}
	// Stats are read after the trace snapshot and only ever grow, so the
	// trace count bounds the counter from below (exact reconciliation is
	// the deterministic chaos suite's job).
	st := client.Stats()
	if uint64(recv) > st.RecvPackets {
		t.Fatalf("trace has %d packet_received, stats say only %d", recv, st.RecvPackets)
	}
}
