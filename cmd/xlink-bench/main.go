// Command xlink-bench regenerates the paper's tables and figures from the
// emulated system. Run with no arguments to execute every experiment, or
// name specific ones:
//
//	xlink-bench [-scale quick|full] [-seed N] [exp ...]
//
// Experiments: fig1, fig1c, rtt, crossisp, fig6, fig7, fig8, fig10,
// fig11, fig12, fig13, fig14, traces.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Int64("seed", 20210823, "base random seed")
	flag.Parse()

	scale := experiments.FullScale()
	if *scaleFlag == "quick" {
		scale = experiments.QuickScale()
	}

	runners := map[string]func() experiments.Report{
		"fig1":                 func() experiments.Report { return experiments.Fig1Dynamics(*seed) },
		"fig1c":                func() experiments.Report { return experiments.Fig1cTable1(scale, *seed) },
		"table1":               func() experiments.Report { return experiments.Fig1cTable1(scale, *seed) },
		"rtt":                  func() experiments.Report { return experiments.Sec32PathDelays(*seed) },
		"crossisp":             func() experiments.Report { return experiments.Table4CrossISP() },
		"fig6":                 func() experiments.Report { return experiments.Fig6Reinjection(*seed) },
		"fig7":                 func() experiments.Report { return experiments.Fig7PrimaryPath(scale, *seed) },
		"fig8":                 func() experiments.Report { return experiments.Fig8AckPath(scale, *seed) },
		"fig10":                func() experiments.Report { return experiments.Fig10Table2(scale, *seed) },
		"table2":               func() experiments.Report { return experiments.Fig10Table2(scale, *seed) },
		"fig11":                func() experiments.Report { return experiments.Fig11Table3(scale, *seed) },
		"table3":               func() experiments.Report { return experiments.Fig11Table3(scale, *seed) },
		"fig12":                func() experiments.Report { return experiments.Fig12FirstFrame(scale, *seed) },
		"fig13":                func() experiments.Report { return experiments.Fig13ExtremeMobility(scale, *seed) },
		"fig14":                func() experiments.Report { return experiments.Fig14Energy(scale, *seed) },
		"traces":               func() experiments.Report { return experiments.Fig15Traces(*seed) },
		"ablation-reinjection": func() experiments.Report { return experiments.AblationReinjectionModes(scale, *seed) },
		"ablation-threshold":   func() experiments.Report { return experiments.AblationSingleThreshold(scale, *seed) },
		"ablation-cc":          func() experiments.Report { return experiments.AblationCC(scale, *seed) },
		"ablation-deltat":      func() experiments.Report { return experiments.AblationDeltaT(scale, *seed) },
	}
	defaultOrder := []string{
		"fig1", "fig1c", "rtt", "crossisp", "fig6", "fig7", "fig8",
		"fig10", "fig11", "fig12", "fig13", "fig14", "traces",
		"ablation-reinjection", "ablation-threshold", "ablation-cc", "ablation-deltat",
	}

	names := flag.Args()
	if len(names) == 0 {
		names = defaultOrder
	}
	for _, name := range names {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			os.Exit(2)
		}
		fmt.Println(run().String())
	}
}
