// Command xlinkvet is the repo-specific static analyzer for the XLINK
// reproduction. It enforces the determinism and robustness invariants the
// emulated experiments depend on; see internal/vet and DESIGN.md
// ("Determinism & correctness tooling") for the rule catalogue.
//
// Usage:
//
//	xlinkvet ./...                 analyze the whole module (exit 1 on findings)
//	xlinkvet -json ./...           same, but emit findings as a JSON array on
//	                               stdout (deterministic file:line:rule order)
//	xlinkvet -as <path> <dir>      analyze one directory under an assumed
//	                               import path, applying every rule (used to
//	                               prove rules fire on the testdata fixtures)
//	xlinkvet -selftest             run the committed violation fixtures and
//	                               verify every rule fires where expected
//	                               (exit 1 if the analyzer lost a rule)
//	xlinkvet -explain <rule>       print one rule's contract, the annotations
//	                               it reads, and an example finding produced
//	                               live from its fixture corpus
//
// Annotation grammar (comment directives read by the analyzer):
//
//	// xlinkvet:hot
//	    on a function declaration: the function — and everything statically
//	    reachable from it — must be allocation-free in the steady state
//	    (rule hotalloc).
//	// xlinkvet:loan <param>... | return
//	    on a function declaration or an interface method: the named slice
//	    parameters (or all loanable return values, with `return`) are
//	    borrowed buffers valid only for the duration of the call and must
//	    not be retained (rule loan). Annotating an interface method applies
//	    the contract to every module-internal implementation.
//	//xlinkvet:cold <why>
//	    on (or directly above) an if statement: the guarded branch is a
//	    documented slow path; hotalloc prunes allocations inside it, as it
//	    does for branches guarded by assert.Enabled.
//	//xlinkvet:ignore <rule>[,<rule>] <why>
//	    on the same or preceding line: suppress the listed rules' findings
//	    (empty list = all rules) with a free-form justification.
//	//xlinkvet:bounded <why>
//	    on a `go` statement's line (or the line above), or on the spawned
//	    function's declaration: the goroutine's lifetime is intentionally
//	    process-bound (rule goleak).
//	//xlinkvet:confines <why>
//	    on a `go` statement's line (or the line above): the goroutine
//	    constructs every confined structure it drives, so `guardedby
//	    confined` transfers into it (goleak still applies to the spawn).
//	// xlinkvet:owns <chan>[,<chan>]
//	    on a function declaration: this side owns the named receiver-field
//	    or package-level channels and is the only legal closer (rule chandir).
//	// xlinkvet:state <from>[,<from>] -> <to>
//	    on a method: declares a lifecycle transition over
//	    idle→handshaking→active→closing→draining→closed (rule connstate).
//	// xlinkvet:requires <state>[,<state>]
//	    on a method: callable only in the named lifecycle states.
//	// xlinkvet:releases timers / // xlinkvet:closeevent
//	    marks the timer-disarm function and the close-trace emitter that
//	    every terminal transition must reach.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/vet"
)

func main() {
	asPath := flag.String("as", "", "treat the single directory argument as this import path and apply every rule")
	selftest := flag.Bool("selftest", false, "verify each rule fires on the committed violation fixtures")
	explain := flag.String("explain", "", "print one rule's contract, annotations, and a fixture-sourced example finding")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	verbose := flag.Bool("v", false, "print type-check diagnostics")
	flag.Parse()

	loader, err := vet.NewLoader(".")
	if err != nil {
		fatal(err)
	}

	switch {
	case *explain != "":
		os.Exit(runExplain(os.Stdout, loader, *explain))
	case *selftest:
		os.Exit(runSelftest(loader, *verbose))
	case *asPath != "":
		if flag.NArg() != 1 {
			fatal(fmt.Errorf("-as requires exactly one directory argument"))
		}
		pkg, err := loader.LoadDirAs(flag.Arg(0), *asPath)
		if err != nil {
			fatal(err)
		}
		reportTypeErrs(*verbose, pkg)
		findings := vet.Run(vet.FixtureConfig(loader.ModPath, *asPath), []*vet.Package{pkg})
		os.Exit(report(findings, *jsonOut))
	default:
		pkgs, err := loader.LoadModule()
		if err != nil {
			fatal(err)
		}
		for _, pkg := range pkgs {
			reportTypeErrs(*verbose, pkg)
		}
		cfg := vet.DefaultConfig(loader.ModPath)
		findings := vet.Run(cfg, pkgs)
		findings = filterByArgs(findings, flag.Args(), loader.ModDir)
		os.Exit(report(findings, *jsonOut))
	}
}

// filterByArgs narrows findings to the requested package patterns. `./...`
// (or no argument) keeps everything; `./internal/wire` style arguments keep
// findings under those directories.
func filterByArgs(findings []vet.Finding, args []string, modDir string) []vet.Finding {
	var prefixes []string
	for _, a := range args {
		if a == "./..." || a == "..." {
			return findings
		}
		dir := strings.TrimSuffix(a, "/...")
		dir = strings.TrimPrefix(dir, "./")
		if st, err := os.Stat(modDir + "/" + dir); err != nil || !st.IsDir() {
			fatal(fmt.Errorf("no such package directory: %s", a))
		}
		prefixes = append(prefixes, modDir+"/"+dir)
	}
	if len(prefixes) == 0 {
		return findings
	}
	var out []vet.Finding
	for _, f := range findings {
		for _, p := range prefixes {
			if strings.HasPrefix(f.Pos.Filename, p) {
				out = append(out, f)
				break
			}
		}
	}
	return out
}

// jsonFinding is the machine-readable finding shape emitted by -json.
// vet.Run already sorts findings by file, line, rule (column as the final
// tiebreak), so the array order is deterministic across runs.
type jsonFinding struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Rule string `json:"rule"`
	Msg  string `json:"msg"`
}

// writeJSON emits findings as an indented JSON array. vet.Run's sort order
// makes the emission deterministic, which the golden-output test pins.
func writeJSON(w io.Writer, findings []vet.Finding) error {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		out = append(out, jsonFinding{
			File: f.Pos.Filename, Line: f.Pos.Line, Col: f.Pos.Column,
			Rule: f.Rule, Msg: f.Msg,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func report(findings []vet.Finding, jsonOut bool) int {
	if jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fatal(err)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xlinkvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// runExplain prints one rule family's contract and annotation grammar from
// the vet.RuleDocs table, then runs the rule on its committed fixture and
// shows the first finding as a live example — the documentation is sourced
// from the same code paths the sweep uses, so it cannot drift.
func runExplain(w io.Writer, loader *vet.Loader, rule string) int {
	doc := vet.DocFor(rule)
	if doc == nil {
		names := make([]string, 0, len(vet.RuleDocs))
		for _, d := range vet.RuleDocs {
			names = append(names, d.Name)
		}
		fmt.Fprintf(os.Stderr, "xlinkvet: unknown rule %q; rules: %s\n", rule, strings.Join(names, ", "))
		return 2
	}
	fmt.Fprintf(w, "rule %s\n\n", doc.Name)
	fmt.Fprintf(w, "  %s\n", doc.Contract)
	if len(doc.Annotations) > 0 {
		fmt.Fprintf(w, "\nannotations\n\n")
		for _, a := range doc.Annotations {
			fmt.Fprintf(w, "  %s\n", a)
		}
	}
	dir := loader.ModDir + "/internal/vet/testdata/fixtures/" + doc.Fixture
	fixPath := "fixture/" + doc.Fixture
	pkg, err := loader.LoadDirAs(dir, fixPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xlinkvet: load fixture %s: %v\n", doc.Fixture, err)
		return 2
	}
	findings := vet.Run(vet.FixtureConfig(loader.ModPath, fixPath), []*vet.Package{pkg})
	for _, f := range findings {
		if f.Rule != doc.Name {
			continue
		}
		fmt.Fprintf(w, "\nexample finding (from testdata/fixtures/%s)\n\n", doc.Fixture)
		fmt.Fprintf(w, "  %s\n", f)
		return 0
	}
	fmt.Fprintf(os.Stderr, "xlinkvet: rule %s produced no finding on its fixture\n", doc.Name)
	return 2
}

// runSelftest loads each fixture under internal/vet/testdata/fixtures and
// checks that exactly the expected rules fire, proving the analyzer still
// detects every violation class it promises to.
func runSelftest(loader *vet.Loader, verbose bool) int {
	cases := []struct {
		dir      string
		rule     string
		expected int
	}{
		{"determinism", "determinism", 5},
		{"wireerr", "wireerr", 3},
		{"panicpath", "panicpath", 2},
		{"maprange", "maprange", 1},
		{"obsevent", "obsevent", 7},
		{"lockheld", "lockheld", 7},
		{"guardedby", "guardedby", 4},
		{"taintsize", "taintsize", 3},
		{"hotalloc", "hotalloc", 8},
		{"loan", "loan", 7},
		{"goleak", "goleak", 7},
		{"chandir", "chandir", 8},
		{"connstate", "connstate", 8},
		{"broken", "loaderr", 2},
	}
	failed := false
	for _, tc := range cases {
		dir := loader.ModDir + "/internal/vet/testdata/fixtures/" + tc.dir
		asPath := "fixture/" + tc.dir
		pkg, err := loader.LoadDirAs(dir, asPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "selftest %s: load: %v\n", tc.dir, err)
			failed = true
			continue
		}
		reportTypeErrs(verbose, pkg)
		findings := vet.Run(vet.FixtureConfig(loader.ModPath, asPath), []*vet.Package{pkg})
		got := 0
		for _, f := range findings {
			if f.Rule == tc.rule {
				got++
			} else {
				fmt.Fprintf(os.Stderr, "selftest %s: unexpected %s\n", tc.dir, f)
				failed = true
			}
			if verbose {
				fmt.Println(f)
			}
		}
		if got != tc.expected {
			fmt.Fprintf(os.Stderr, "selftest %s: rule %s fired %d time(s), want %d\n",
				tc.dir, tc.rule, got, tc.expected)
			failed = true
			continue
		}
		fmt.Printf("selftest %-12s ok (%d finding(s))\n", tc.dir, got)
	}
	if failed {
		return 1
	}
	fmt.Println("selftest: all rules fire on their fixtures")
	return 0
}

func reportTypeErrs(verbose bool, pkg *vet.Package) {
	if !verbose {
		return
	}
	for _, err := range pkg.TypeErrs {
		fmt.Fprintf(os.Stderr, "typecheck %s: %v\n", pkg.Path, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xlinkvet:", err)
	os.Exit(2)
}
