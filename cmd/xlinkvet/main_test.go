package main

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/vet"
)

var update = flag.Bool("update", false, "rewrite the golden -json files")

// TestJSONGolden pins the -json output for the escape-analysis rules byte
// for byte: finding order (vet.Run sorts by file, line, rule, column),
// field names, and message wording are all part of the machine-readable
// contract other tooling parses. Absolute fixture paths are relativized to
// the module root so the golden files are machine-independent.
func TestJSONGolden(t *testing.T) {
	loader, err := vet.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, fixture := range []string{"hotalloc", "loan", "goleak", "chandir", "connstate", "broken"} {
		t.Run(fixture, func(t *testing.T) {
			dir := filepath.Join(loader.ModDir, "internal", "vet", "testdata", "fixtures", fixture)
			asPath := "fixture/" + fixture
			pkg, err := loader.LoadDirAs(dir, asPath)
			if err != nil {
				t.Fatal(err)
			}
			findings := vet.Run(vet.FixtureConfig(loader.ModPath, asPath), []*vet.Package{pkg})
			var buf bytes.Buffer
			if err := writeJSON(&buf, findings); err != nil {
				t.Fatal(err)
			}
			got := strings.ReplaceAll(buf.String(), loader.ModDir, "")

			golden := filepath.Join("testdata", "golden", fixture+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if got != string(want) {
				t.Errorf("-json output drifted from %s (run with -update to regenerate)\ngot:\n%s\nwant:\n%s",
					golden, got, want)
			}
		})
	}
}

// TestExplain walks the whole RuleDocs table through runExplain: every rule
// family must document itself and produce a live example finding from its
// fixture, so the -explain output can never drift from the analyzer.
func TestExplain(t *testing.T) {
	loader, err := vet.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, doc := range vet.RuleDocs {
		t.Run(doc.Name, func(t *testing.T) {
			var buf bytes.Buffer
			if code := runExplain(&buf, loader, doc.Name); code != 0 {
				t.Fatalf("runExplain(%s) = %d, want 0", doc.Name, code)
			}
			out := buf.String()
			for _, want := range []string{"rule " + doc.Name, "example finding", "[" + doc.Name + "]"} {
				if !strings.Contains(out, want) {
					t.Errorf("explain %s output missing %q:\n%s", doc.Name, want, out)
				}
			}
		})
	}
	if code := runExplain(&bytes.Buffer{}, loader, "nosuch"); code != 2 {
		t.Errorf("runExplain(nosuch) = %d, want 2", code)
	}
}
