// Command tracegen emits synthetic Mahimahi-format packet-delivery traces
// for the environments the paper measures:
//
//	tracegen -kind walking-wifi|walking-lte|subway-cell|subway-wifi|hsr-cell|hsr-wifi|constant \
//	         [-seconds 60] [-seed 1] [-mbps 10] > trace.txt
//
// The output format is one millisecond timestamp per line, each an
// opportunity to deliver one 1500-byte packet — directly loadable by
// Mahimahi's mm-link or by this repository's netem package.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	kind := flag.String("kind", "walking-wifi", "trace kind")
	seconds := flag.Int("seconds", 60, "trace duration in seconds")
	seed := flag.Int64("seed", 1, "random seed")
	mbps := flag.Float64("mbps", 10, "rate for -kind constant")
	flag.Parse()

	dur := time.Duration(*seconds) * time.Second
	rng := sim.NewRNG(*seed)
	var tr *trace.Trace
	switch *kind {
	case "walking-wifi":
		tr = trace.WalkingWiFi(rng, dur)
	case "walking-lte":
		tr = trace.WalkingLTE(rng, dur)
	case "subway-cell":
		tr = trace.SubwayCellular(rng, dur)
	case "subway-wifi":
		tr = trace.SubwayWiFi(rng, dur)
	case "hsr-cell":
		tr = trace.HSRCellular(rng, dur)
	case "hsr-wifi":
		tr = trace.HSRWiFi(rng, dur)
	case "constant":
		tr = trace.ConstantRate("constant", *mbps, dur)
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := tr.Write(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
