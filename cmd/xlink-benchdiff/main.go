// Command xlink-benchdiff records `go test -bench` output into a JSON
// snapshot file and compares two snapshots, failing on performance
// regressions. It is the regression gate behind `make bench` (DESIGN.md
// §11).
//
// Record a snapshot (merging into an existing file and label — a partial
// re-run only refreshes the benchmarks it contains):
//
//	go test -run '^$' -bench . -benchmem ./... | tee raw.txt
//	xlink-benchdiff -record -label after -in raw.txt -out BENCH_5.json
//
// Compare two labels of one file, or two single-snapshot files:
//
//	xlink-benchdiff -file BENCH_5.json -old before -new after
//	xlink-benchdiff old.json new.json
//
// The comparison exits non-zero when any benchmark present in both
// snapshots regressed by more than -max-regress percent in ns/op (default
// 10). Allocation deltas are always reported; -max-alloc-regress optionally
// gates allocs/op too.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Metrics is one benchmark's recorded numbers. Extra holds custom
// b.ReportMetric units (e.g. the paper-figure benchmarks' rebuffer rates).
type Metrics struct {
	NsOp     float64            `json:"ns_op"`
	BOp      float64            `json:"b_op"`
	AllocsOp float64            `json:"allocs_op"`
	Extra    map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is one labeled benchmark run.
type Snapshot struct {
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

// File is the BENCH json layout: a set of labeled snapshots, typically
// "before" and "after".
type File struct {
	Schema    string              `json:"schema"`
	Snapshots map[string]Snapshot `json:"snapshots"`
}

const schema = "xlink-bench/1"

func main() {
	var (
		record          = flag.Bool("record", false, "parse -in benchmark output and merge it into -out under -label")
		label           = flag.String("label", "after", "snapshot label to record")
		in              = flag.String("in", "-", "benchmark output to parse (- = stdin)")
		out             = flag.String("out", "BENCH_5.json", "snapshot file to write")
		file            = flag.String("file", "", "snapshot file holding both labels to compare")
		oldLabel        = flag.String("old", "before", "baseline snapshot label")
		newLabel        = flag.String("new", "after", "candidate snapshot label")
		maxRegress      = flag.Float64("max-regress", 10, "max tolerated ns/op regression in percent")
		maxAllocRegress = flag.Float64("max-alloc-regress", -1, "max tolerated allocs/op regression in percent (<0 = report only)")
	)
	flag.Parse()

	if *record {
		if err := runRecord(*in, *out, *label); err != nil {
			fmt.Fprintln(os.Stderr, "xlink-benchdiff:", err)
			os.Exit(2)
		}
		return
	}

	oldSnap, newSnap, err := loadPair(*file, flag.Args(), *oldLabel, *newLabel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xlink-benchdiff:", err)
		os.Exit(2)
	}
	regressions := compare(os.Stdout, oldSnap, newSnap, *maxRegress, *maxAllocRegress)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "xlink-benchdiff: %d regression(s) beyond gate\n", regressions)
		os.Exit(1)
	}
}

// runRecord parses raw `go test -bench` output and merges it into the
// snapshot file under the given label: benchmarks present in the input
// update (or add) their entry, benchmarks absent from the input are kept —
// so a partial re-run (one package, one figure) refreshes just its own
// numbers.
func runRecord(in, out, label string) error {
	var r io.Reader = os.Stdin
	if in != "-" {
		f, err := os.Open(in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	benches, err := parseBench(r)
	if err != nil {
		return err
	}
	if len(benches) == 0 {
		return fmt.Errorf("no benchmark lines found in %s", in)
	}
	bf := &File{Schema: schema, Snapshots: map[string]Snapshot{}}
	if data, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(data, bf); err != nil {
			return fmt.Errorf("existing %s: %w", out, err)
		}
		if bf.Snapshots == nil {
			bf.Snapshots = map[string]Snapshot{}
		}
	}
	bf.Schema = schema
	merged := bf.Snapshots[label].Benchmarks
	if merged == nil {
		merged = map[string]Metrics{}
	}
	for name, m := range benches {
		merged[name] = m
	}
	bf.Snapshots[label] = Snapshot{Benchmarks: merged}
	data, err := json.MarshalIndent(bf, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("recorded %d benchmarks under %q in %s\n", len(benches), label, out)
	return nil
}

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. Benchmarks are keyed as "<package>.<name>" (package from the
// preceding "pkg:" line, module prefix stripped) so identically named
// benchmarks in different packages cannot collide.
func parseBench(r io.Reader) (map[string]Metrics, error) {
	out := map[string]Metrics{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "pkg:") {
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			if i := strings.Index(pkg, "/"); i >= 0 {
				pkg = pkg[i+1:] // strip module name
			} else {
				pkg = "root"
			}
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			// Strip the -GOMAXPROCS suffix.
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		m := Metrics{}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				m.NsOp = v
				ok = true
			case "B/op":
				m.BOp = v
			case "allocs/op":
				m.AllocsOp = v
			case "MB/s":
				// Redundant with ns/op + SetBytes; skip.
			default:
				if m.Extra == nil {
					m.Extra = map[string]float64{}
				}
				m.Extra[unit] = v
			}
		}
		if ok {
			key := name
			if pkg != "" {
				key = pkg + "." + name
			}
			out[key] = m
		}
	}
	return out, sc.Err()
}

// loadPair resolves the two snapshots to compare: either two labels from
// one -file, or two positional snapshot files (using the requested label
// when present, else the file's only snapshot).
func loadPair(file string, args []string, oldLabel, newLabel string) (Snapshot, Snapshot, error) {
	if file != "" {
		bf, err := loadFile(file)
		if err != nil {
			return Snapshot{}, Snapshot{}, err
		}
		oldSnap, ok := bf.Snapshots[oldLabel]
		if !ok {
			return Snapshot{}, Snapshot{}, fmt.Errorf("%s: no snapshot %q", file, oldLabel)
		}
		newSnap, ok := bf.Snapshots[newLabel]
		if !ok {
			return Snapshot{}, Snapshot{}, fmt.Errorf("%s: no snapshot %q", file, newLabel)
		}
		return oldSnap, newSnap, nil
	}
	if len(args) != 2 {
		return Snapshot{}, Snapshot{}, fmt.Errorf("usage: xlink-benchdiff [-record ...] | -file F -old L1 -new L2 | old.json new.json")
	}
	oldSnap, err := loadSnapshot(args[0], oldLabel)
	if err != nil {
		return Snapshot{}, Snapshot{}, err
	}
	newSnap, err := loadSnapshot(args[1], newLabel)
	if err != nil {
		return Snapshot{}, Snapshot{}, err
	}
	return oldSnap, newSnap, nil
}

func loadFile(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	bf := &File{}
	if err := json.Unmarshal(data, bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return bf, nil
}

// loadSnapshot picks the wanted label from a file, falling back to the
// file's only snapshot.
func loadSnapshot(path, label string) (Snapshot, error) {
	bf, err := loadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	if s, ok := bf.Snapshots[label]; ok {
		return s, nil
	}
	if len(bf.Snapshots) == 1 {
		for _, s := range bf.Snapshots {
			return s, nil
		}
	}
	return Snapshot{}, fmt.Errorf("%s: no snapshot %q (have %d labels)", path, label, len(bf.Snapshots))
}

// compare prints the delta table and returns the number of gated
// regressions.
func compare(w io.Writer, oldSnap, newSnap Snapshot, maxRegress, maxAllocRegress float64) int {
	names := make([]string, 0, len(oldSnap.Benchmarks))
	for name := range oldSnap.Benchmarks {
		if _, ok := newSnap.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-52s %14s %14s %8s %9s %9s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns%", "old al/op", "new al/op", "Δal%")
	for _, name := range names {
		o, n := oldSnap.Benchmarks[name], newSnap.Benchmarks[name]
		dNs := pctDelta(o.NsOp, n.NsOp)
		dAl := pctDelta(o.AllocsOp, n.AllocsOp)
		flag := ""
		if dNs > maxRegress {
			flag = "  << ns/op regression"
			regressions++
		}
		if maxAllocRegress >= 0 && dAl > maxAllocRegress {
			flag += "  << allocs/op regression"
			regressions++
		}
		fmt.Fprintf(w, "%-52s %14.1f %14.1f %7.1f%% %9.1f %9.1f %7.1f%%%s\n",
			name, o.NsOp, n.NsOp, dNs, o.AllocsOp, n.AllocsOp, dAl, flag)
	}
	for _, snap := range []struct {
		label string
		only  Snapshot
		other Snapshot
	}{{"old", oldSnap, newSnap}, {"new", newSnap, oldSnap}} {
		var missing []string
		for name := range snap.only.Benchmarks {
			if _, ok := snap.other.Benchmarks[name]; !ok {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		for _, name := range missing {
			fmt.Fprintf(w, "%-52s (only in %s snapshot)\n", name, snap.label)
		}
	}
	return regressions
}

// pctDelta returns the relative change from old to new in percent;
// positive means new is worse (slower / more allocations).
func pctDelta(old, new float64) float64 {
	if old == 0 {
		if new == 0 {
			return 0
		}
		return 100
	}
	return (new - old) / old * 100
}
