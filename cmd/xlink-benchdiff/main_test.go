package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/wire
cpu: AMD EPYC
BenchmarkVarintAppend-8   	80041635	        14.85 ns/op	       0 B/op	       0 allocs/op
BenchmarkStreamFrameAppend-8	 4805679	       248.9 ns/op	4821.76 MB/s	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/wire	2.461s
pkg: repro
BenchmarkFig1_VanillaMPDynamics-8	       2	 503143862 ns/op	         0.1230 rebuffer_ratio	 1024 B/op	      12 allocs/op
PASS
`

func TestParseBench(t *testing.T) {
	benches, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	va, ok := benches["internal/wire.BenchmarkVarintAppend"]
	if !ok {
		t.Fatalf("missing wire benchmark; have %v", benches)
	}
	if va.NsOp != 14.85 || va.BOp != 0 || va.AllocsOp != 0 {
		t.Errorf("VarintAppend = %+v", va)
	}
	sf := benches["internal/wire.BenchmarkStreamFrameAppend"]
	if sf.NsOp != 248.9 {
		t.Errorf("StreamFrameAppend ns/op = %v", sf.NsOp)
	}
	fig, ok := benches["root.BenchmarkFig1_VanillaMPDynamics"]
	if !ok {
		t.Fatalf("missing root-package benchmark; have %v", benches)
	}
	if fig.Extra["rebuffer_ratio"] != 0.1230 {
		t.Errorf("custom metric = %v", fig.Extra)
	}
	if fig.AllocsOp != 12 {
		t.Errorf("Fig1 allocs/op = %v", fig.AllocsOp)
	}
}

func snap(nsOp, allocs float64) Snapshot {
	return Snapshot{Benchmarks: map[string]Metrics{
		"internal/transport.BenchmarkRoundTrip": {NsOp: nsOp, AllocsOp: allocs},
	}}
}

func TestCompareGate(t *testing.T) {
	// Within tolerance: 8% slower passes a 10% gate.
	if n := compare(io.Discard, snap(1000, 100), snap(1080, 100), 10, -1); n != 0 {
		t.Errorf("8%% regression flagged under 10%% gate: %d", n)
	}
	// Beyond tolerance: 20% slower must fail.
	if n := compare(io.Discard, snap(1000, 100), snap(1200, 100), 10, -1); n == 0 {
		t.Error("20% regression not flagged under 10% gate")
	}
	// Improvement never fails.
	if n := compare(io.Discard, snap(1000, 100), snap(500, 40), 10, 0); n != 0 {
		t.Errorf("improvement flagged as regression: %d", n)
	}
	// Alloc gate only active when threshold >= 0.
	if n := compare(io.Discard, snap(1000, 100), snap(1000, 150), 10, -1); n != 0 {
		t.Errorf("alloc delta flagged with gate disabled: %d", n)
	}
	if n := compare(io.Discard, snap(1000, 100), snap(1000, 150), 10, 0); n == 0 {
		t.Error("50% alloc regression not flagged with 0% alloc gate")
	}
}

func TestPctDelta(t *testing.T) {
	if d := pctDelta(100, 110); d != 10 {
		t.Errorf("pctDelta(100,110) = %v", d)
	}
	if d := pctDelta(0, 0); d != 0 {
		t.Errorf("pctDelta(0,0) = %v", d)
	}
	if d := pctDelta(0, 5); d != 100 {
		t.Errorf("pctDelta(0,5) = %v", d)
	}
}

func TestRecordMergesIntoLabel(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	write := func(name, text string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	first := write("first.txt", `pkg: repro/internal/wire
BenchmarkA 	100	 10.0 ns/op	 1 B/op	 1 allocs/op
BenchmarkB 	100	 20.0 ns/op	 2 B/op	 2 allocs/op
`)
	second := write("second.txt", `pkg: repro/internal/wire
BenchmarkB 	100	 30.0 ns/op	 3 B/op	 3 allocs/op
`)
	if err := runRecord(first, out, "before"); err != nil {
		t.Fatal(err)
	}
	if err := runRecord(second, out, "before"); err != nil {
		t.Fatal(err)
	}
	bf, err := loadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	got := bf.Snapshots["before"].Benchmarks
	if len(got) != 2 {
		t.Fatalf("want A kept and B updated (2 entries), got %d: %v", len(got), got)
	}
	if a := got["internal/wire.BenchmarkA"]; a.NsOp != 10.0 {
		t.Fatalf("BenchmarkA should survive partial re-record, got %+v", a)
	}
	if b := got["internal/wire.BenchmarkB"]; b.NsOp != 30.0 || b.AllocsOp != 3 {
		t.Fatalf("BenchmarkB should be updated, got %+v", b)
	}
}
