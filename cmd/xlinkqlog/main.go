// Command xlinkqlog generates and summarizes XLINK's qlog-style NDJSON
// traces (internal/obs). It closes the observability loop of DESIGN.md §9:
// any chaos-corpus scenario can be replayed with a tracer attached, and the
// resulting trace rendered as per-path timelines, an Alg. 1 re-injection
// decision table and a loss/rebuffer correlation — the views the paper's
// debugging story (Sec 6) needs.
//
// Usage:
//
//	xlinkqlog -list                    list the chaos corpus scenarios
//	xlinkqlog -run <scenario> [-o f]   replay a scenario with tracing and
//	                                   write the NDJSON trace (default stdout)
//	xlinkqlog [-metrics] <trace.ndjson> summarize a trace file
//	xlinkqlog -run <scenario> -summary replay and summarize in one step
//	xlinkqlog -fleet <t1> [t2 ...]     aggregate conn:scorecard rollups
//	                                   across many trace files (DESIGN.md §14)
//
// Exit status: 0 on success, 1 on unreadable or malformed input, 2 on
// usage errors (unknown flags or stray arguments).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/obs"
	"repro/internal/stats"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point; it returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xlinkqlog", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list corpus scenarios and exit")
	runName := fs.String("run", "", "replay this corpus scenario with a tracer attached")
	out := fs.String("o", "", "write the generated trace to this file (default stdout)")
	summary := fs.Bool("summary", false, "with -run: summarize instead of dumping the trace")
	metrics := fs.Bool("metrics", false, "also dump the metrics registry exposition")
	fleet := fs.Bool("fleet", false, "aggregate conn:scorecard events across the given trace files")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "xlinkqlog:", err)
		return 1
	}

	switch {
	case *list:
		for _, sc := range chaos.Corpus() {
			fmt.Fprintf(stdout, "%-18s seed=%-4d script=%s\n", sc.Name, sc.Seed, sc.Script.Name)
		}
	case *runName != "":
		sc, ok := chaos.ScenarioByName(*runName)
		if !ok {
			return fail(fmt.Errorf("unknown scenario %q (use -list)", *runName))
		}
		sc.Tracer = obs.NewTrace(sc.Name)
		res := chaos.Run(sc)
		if *summary {
			evs, err := obs.ParseBytes(sc.Tracer.Bytes())
			if err != nil {
				return fail(err)
			}
			summarize(stdout, sc.Name, evs)
		} else if *out != "" {
			if err := os.WriteFile(*out, sc.Tracer.Bytes(), 0o644); err != nil {
				return fail(err)
			}
			fmt.Fprintf(stderr, "%s: %d events, completed=%v, %d bytes -> %s\n",
				sc.Name, sc.Tracer.EventCount(), res.Completed, len(sc.Tracer.Bytes()), *out)
		} else {
			stdout.Write(sc.Tracer.Bytes())
		}
		if *metrics {
			fmt.Fprintln(stdout, "== metrics ==")
			sc.Tracer.Registry().Dump(stdout)
		}
	case *fleet:
		if fs.NArg() == 0 {
			fmt.Fprintln(stderr, "xlinkqlog: -fleet needs at least one trace file")
			fs.Usage()
			return 2
		}
		if err := fleetSummarize(stdout, fs.Args(), *metrics); err != nil {
			return fail(err)
		}
	case fs.NArg() == 1:
		evs, err := parseTraceFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		summarize(stdout, fs.Arg(0), evs)
	default:
		if fs.NArg() > 1 {
			fmt.Fprintf(stderr, "xlinkqlog: unexpected arguments %q (use -fleet to aggregate several traces)\n", fs.Args())
		}
		fs.Usage()
		return 2
	}
	return 0
}

// parseTraceFile reads and parses one NDJSON trace file.
func parseTraceFile(path string) ([]obs.Event, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	evs, err := obs.Parse(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return evs, nil
}

// fleetSummarize aggregates the conn:scorecard rollups of many trace files
// into the fleet view: session counts, completion rate, RCT and rebuffer
// distributions, recovery-lane byte attribution, and per-path totals. Every
// card is also merged into a registry so -metrics yields the same
// exposition a production aggregation point would serve.
func fleetSummarize(w io.Writer, files []string, dumpMetrics bool) error {
	reg := obs.NewRegistry()
	var cards []obs.Scorecard
	traced := 0
	for _, path := range files {
		evs, err := parseTraceFile(path)
		if err != nil {
			return err
		}
		n := 0
		for _, e := range evs {
			if c, ok := obs.ScorecardFromEvent(e); ok {
				cards = append(cards, c)
				reg.MergeScorecard(&c)
				n++
			}
		}
		if n > 0 {
			traced++
		}
	}
	fmt.Fprintf(w, "== fleet rollup: %d sessions from %d of %d traces ==\n",
		len(cards), traced, len(files))
	if len(cards) == 0 {
		fmt.Fprintln(w, "  (no conn:scorecard events; generate traces with -run or a live Tracer)")
		return nil
	}

	var completed int
	var rcts []float64
	var rebufTime time.Duration
	var rebufCount, qoeDec, qoeEn, qoeTr uint64
	var stream, rtx, reinj, fec uint64
	var sentPkts, lostPkts uint64
	for _, c := range cards {
		if c.Completed {
			completed++
			rcts = append(rcts, c.RCT.Seconds())
		}
		rebufTime += c.RebufferTime
		rebufCount += c.RebufferCount
		qoeDec += c.QoEDecisions
		qoeEn += c.QoEEnables
		qoeTr += c.QoETransitions
		stream += c.StreamBytes
		rtx += c.RtxBytes
		reinj += c.ReinjBytes
		fec += c.FECRecoveredBytes
		for i := 0; i < c.NumPaths; i++ {
			sentPkts += c.Paths[i].SentPackets
			lostPkts += c.Paths[i].LostPackets
		}
	}
	fmt.Fprintf(w, "  completed:  %d/%d (%.1f%%)\n",
		completed, len(cards), 100*float64(completed)/float64(len(cards)))
	if len(rcts) > 0 {
		fmt.Fprintf(w, "  rct (s):    %s\n", stats.Summarize(rcts))
	}
	fmt.Fprintf(w, "  rebuffer:   %v total across %d stalls\n", rebufTime, rebufCount)
	fmt.Fprintf(w, "  qoe:        %d decisions, %d enables, %d transitions\n", qoeDec, qoeEn, qoeTr)
	total := stream + rtx + reinj
	fmt.Fprintf(w, "  lane bytes: stream=%d rtx=%d reinjected=%d fec_recovered=%d\n",
		stream, rtx, reinj, fec)
	if total > 0 {
		fmt.Fprintf(w, "  redundancy: %.2f%% of sent stream bytes were re-injected\n",
			100*float64(reinj)/float64(total))
	}
	if sentPkts > 0 {
		fmt.Fprintf(w, "  paths:      %d packets sent, %d lost (%.3f%%)\n",
			sentPkts, lostPkts, 100*float64(lostPkts)/float64(sentPkts))
	}
	if dumpMetrics {
		fmt.Fprintln(w, "== metrics ==")
		reg.Dump(w)
	}
	return nil
}

// summarize renders the human views of one trace.
func summarize(w io.Writer, title string, evs []obs.Event) {
	fmt.Fprintf(w, "trace %s: %d events\n\n", title, len(evs))
	eventTable(w, evs)
	pathTimelines(w, evs)
	decisionTable(w, evs)
	fecTable(w, evs)
	batchTable(w, evs)
	lossRebufferCorrelation(w, evs)
}

// batchTable summarizes the batched packet I/O plane (DESIGN.md §16): how
// many SendBatch flushes each path saw and how full they ran, plus how many
// ACK loss-detection passes receive coalescing saved per origin.
func batchTable(w io.Writer, evs []obs.Event) {
	fmt.Fprintln(w, "== batched i/o ==")
	type bkey struct {
		origin string
		path   uint64
	}
	type btally struct {
		flushes, packets, max int
	}
	flushes := map[bkey]*btally{}
	type ctally struct {
		batches, acks, passes int
	}
	coalesced := map[string]*ctally{}
	for _, e := range evs {
		switch e.Name {
		case obs.EvBatchFlush:
			k := bkey{e.Origin, e.U64("path")}
			t := flushes[k]
			if t == nil {
				t = &btally{}
				flushes[k] = t
			}
			n := int(e.I64("packets"))
			t.flushes++
			t.packets += n
			if n > t.max {
				t.max = n
			}
		case obs.EvAckCoalesced:
			t := coalesced[e.Origin]
			if t == nil {
				t = &ctally{}
				coalesced[e.Origin] = t
			}
			t.batches++
			t.acks += int(e.I64("acks"))
			t.passes += int(e.I64("paths"))
		}
	}
	if len(flushes) == 0 && len(coalesced) == 0 {
		fmt.Fprintln(w, "  (no batch events; sender ran unbatched)")
		fmt.Fprintln(w)
		return
	}
	bkeys := make([]bkey, 0, len(flushes))
	for k := range flushes {
		bkeys = append(bkeys, k)
	}
	sort.Slice(bkeys, func(i, j int) bool {
		if bkeys[i].origin != bkeys[j].origin {
			return bkeys[i].origin < bkeys[j].origin
		}
		return bkeys[i].path < bkeys[j].path
	})
	for _, k := range bkeys {
		t := flushes[k]
		fmt.Fprintf(w, "  %-8s path %d: flushes=%d packets=%d avg_batch=%.2f max_batch=%d\n",
			k.origin, k.path, t.flushes, t.packets, float64(t.packets)/float64(t.flushes), t.max)
	}
	origins := make([]string, 0, len(coalesced))
	for o := range coalesced {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		t := coalesced[o]
		fmt.Fprintf(w, "  %-8s coalesced acks: %d acks over %d batches -> %d loss passes (saved %d)\n",
			o, t.acks, t.batches, t.passes, t.acks-t.passes)
	}
	fmt.Fprintln(w)
}

// eventTable prints per-(origin, name) event counts.
func eventTable(w io.Writer, evs []obs.Event) {
	type key struct{ origin, name string }
	counts := map[key]int{}
	for _, e := range evs {
		counts[key{e.Origin, string(e.Name)}]++
	}
	keys := make([]key, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].name < keys[j].name
	})
	fmt.Fprintln(w, "== event counts ==")
	for _, k := range keys {
		fmt.Fprintf(w, "  %-8s %-28s %6d\n", k.origin, k.name, counts[k])
	}
	fmt.Fprintln(w)
}

// pathTimelines prints, per origin and path, the lifecycle transitions in
// time order alongside traffic totals.
func pathTimelines(w io.Writer, evs []obs.Event) {
	fmt.Fprintln(w, "== path timelines ==")
	type pkey struct {
		origin string
		path   uint64
	}
	type tally struct {
		sent, lost, reinj int
		sentBytes         uint64
		lines             []string
	}
	tallies := map[pkey]*tally{}
	get := func(e obs.Event) *tally {
		k := pkey{e.Origin, e.U64("path")}
		tl := tallies[k]
		if tl == nil {
			tl = &tally{}
			tallies[k] = tl
		}
		return tl
	}
	for _, e := range evs {
		switch e.Name {
		case obs.EvPathAdded:
			get(e).lines = append(get(e).lines, fmt.Sprintf("%12v  added (net=%d tech=%s)", e.Time, e.I64("net"), e.Str("tech")))
		case obs.EvPathValidated:
			get(e).lines = append(get(e).lines, fmt.Sprintf("%12v  validated", e.Time))
		case obs.EvPathState:
			get(e).lines = append(get(e).lines, fmt.Sprintf("%12v  -> %s (%s)", e.Time, e.Str("state"), e.Str("reason")))
		case obs.EvPathAbandoned:
			get(e).lines = append(get(e).lines, fmt.Sprintf("%12v  abandoned (%s)", e.Time, e.Str("reason")))
		case obs.EvPrimaryChanged:
			// Attribute to the new primary's timeline.
			k := pkey{e.Origin, e.U64("new")}
			if tallies[k] == nil {
				tallies[k] = &tally{}
			}
			tallies[k].lines = append(tallies[k].lines,
				fmt.Sprintf("%12v  elected primary (was %d)", e.Time, e.U64("old")))
		case obs.EvPacketSent:
			t := get(e)
			t.sent++
			t.sentBytes += e.U64("bytes")
		case obs.EvPacketLost:
			get(e).lost++
		case obs.EvReinjectSend:
			get(e).reinj++
		}
	}
	keys := make([]pkey, 0, len(tallies))
	for k := range tallies {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].origin != keys[j].origin {
			return keys[i].origin < keys[j].origin
		}
		return keys[i].path < keys[j].path
	})
	for _, k := range keys {
		tl := tallies[k]
		fmt.Fprintf(w, "  %s path %d: sent=%d (%d bytes) lost=%d reinjected=%d\n",
			k.origin, k.path, tl.sent, tl.sentBytes, tl.lost, tl.reinj)
		for _, l := range tl.lines {
			fmt.Fprintf(w, "    %s\n", l)
		}
	}
	fmt.Fprintln(w)
}

// decisionTable prints the Alg. 1 evaluations: Δt against both thresholds
// and the verdict, collapsing runs of identical verdicts to transitions.
func decisionTable(w io.Writer, evs []obs.Event) {
	fmt.Fprintln(w, "== qoe re-injection decisions (Alg. 1) ==")
	var total, enables int
	lastVerdict := ""
	for _, e := range evs {
		if e.Name != obs.EvQoEDecision {
			continue
		}
		total++
		verdict := "off"
		if e.Bool("enable") {
			verdict = "ON"
			enables++
		}
		if verdict != lastVerdict {
			fmt.Fprintf(w, "  %12v  dt=%-12v tth1=%-8v tth2=%-8v max_deliver=%-12v -> %s\n",
				e.Time, e.Dur("dt"), e.Dur("tth1"), e.Dur("tth2"), e.Dur("max_deliver"), verdict)
			lastVerdict = verdict
		}
	}
	if total == 0 {
		fmt.Fprintln(w, "  (none)")
	} else {
		fmt.Fprintf(w, "  %d decisions, %d enabled (%.1f%%); transitions shown above\n",
			total, enables, 100*float64(enables)/float64(total))
	}
	fmt.Fprintln(w)
}

// fecTable summarizes the FEC recovery lane (DESIGN.md §13): how much
// redundancy each origin paid, what the decoder got back for it
// (recovered-by-FEC counts and bytes), where it gave up, and the
// redundancy controller's protect rate.
func fecTable(w io.Writer, evs []obs.Event) {
	fmt.Fprintln(w, "== fec recovery lane ==")
	type tally struct {
		windows, repairsSent, repairBytesSent int
		repairsRecv, repairBytesRecv          int
		recovered                             int
		recoveredBytes                        uint64
		giveUps                               map[string]int
		decisions, protects, repairsPlanned   int
	}
	tallies := map[string]*tally{}
	get := func(origin string) *tally {
		tl := tallies[origin]
		if tl == nil {
			tl = &tally{giveUps: map[string]int{}}
			tallies[origin] = tl
		}
		return tl
	}
	for _, e := range evs {
		switch e.Name {
		case obs.EvFECSymbolSent:
			t := get(e.Origin)
			if e.I64("index") < 0 {
				t.windows++
			} else {
				t.repairsSent++
				t.repairBytesSent += int(e.I64("bytes"))
			}
		case obs.EvFECSymbolReceived:
			t := get(e.Origin)
			t.repairsRecv++
			t.repairBytesRecv += int(e.I64("bytes"))
		case obs.EvFECRecovered:
			t := get(e.Origin)
			t.recovered++
			t.recoveredBytes += e.U64("bytes")
		case obs.EvFECGiveUp:
			get(e.Origin).giveUps[e.Str("reason")]++
		case obs.EvFECDecision:
			t := get(e.Origin)
			t.decisions++
			if e.Bool("protect") {
				t.protects++
				t.repairsPlanned += int(e.I64("repairs"))
			}
		}
	}
	if len(tallies) == 0 {
		fmt.Fprintln(w, "  (fec lane not negotiated)")
		fmt.Fprintln(w)
		return
	}
	origins := make([]string, 0, len(tallies))
	for o := range tallies {
		origins = append(origins, o)
	}
	sort.Strings(origins)
	for _, o := range origins {
		tl := tallies[o]
		fmt.Fprintf(w, "  %-8s windows=%d repairs_sent=%d (%d bytes) repairs_recv=%d (%d bytes)\n",
			o, tl.windows, tl.repairsSent, tl.repairBytesSent, tl.repairsRecv, tl.repairBytesRecv)
		fmt.Fprintf(w, "           recovered_by_fec=%d (%d bytes)\n", tl.recovered, tl.recoveredBytes)
		if len(tl.giveUps) > 0 {
			reasons := make([]string, 0, len(tl.giveUps))
			for r := range tl.giveUps {
				reasons = append(reasons, r)
			}
			sort.Strings(reasons)
			for _, r := range reasons {
				fmt.Fprintf(w, "           give_up[%s]=%d\n", r, tl.giveUps[r])
			}
		}
		if tl.decisions > 0 {
			fmt.Fprintf(w, "           controller: %d decisions, %d protected (%.1f%%), %d repairs planned\n",
				tl.decisions, tl.protects, 100*float64(tl.protects)/float64(tl.decisions), tl.repairsPlanned)
		}
	}
	fmt.Fprintln(w)
}

// lossRebufferCorrelation lines up faults, packet losses and player stalls
// on one timeline — the paper's core observability question ("did this
// network event cost the viewer anything?").
func lossRebufferCorrelation(w io.Writer, evs []obs.Event) {
	fmt.Fprintln(w, "== loss / rebuffer correlation ==")
	const bucket = 250 * time.Millisecond
	losses := map[time.Duration]int{}
	var marks []string
	for _, e := range evs {
		switch e.Name {
		case obs.EvPacketLost:
			losses[e.Time/bucket*bucket]++
		case obs.EvFaultInjected:
			marks = append(marks, fmt.Sprintf("%12v  fault %-5s %s", e.Time, e.Str("phase"), e.Str("op")))
		case obs.EvVideoRebufferStart:
			marks = append(marks, fmt.Sprintf("%12v  REBUFFER start (#%d)", e.Time, e.I64("count")))
		case obs.EvVideoRebufferEnd:
			marks = append(marks, fmt.Sprintf("%12v  rebuffer end (stalled %v)", e.Time, e.Dur("stall")))
		case obs.EvVideoPlaybackStart:
			marks = append(marks, fmt.Sprintf("%12v  playback started", e.Time))
		case obs.EvVideoFinished:
			marks = append(marks, fmt.Sprintf("%12v  playback finished", e.Time))
		case obs.EvConnState:
			marks = append(marks, fmt.Sprintf("%12v  conn %s: %s -> %s", e.Time, e.Origin, e.Str("old"), e.Str("new")))
		}
	}
	times := make([]time.Duration, 0, len(losses))
	for t := range losses {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, t := range times {
		marks = append(marks, fmt.Sprintf("%12v  %d packets lost in [%v, %v)", t, losses[t], t, t+bucket))
	}
	sort.Slice(marks, func(i, j int) bool {
		return parseMarkTime(marks[i]) < parseMarkTime(marks[j])
	})
	if len(marks) == 0 {
		fmt.Fprintln(w, "  (no losses, faults or stalls)")
	}
	for _, m := range marks {
		fmt.Fprintf(w, "  %s\n", m)
	}
}

// parseMarkTime recovers the leading duration of a timeline mark for the
// final merge sort (marks are built per category, then interleaved).
func parseMarkTime(mark string) time.Duration {
	s := strings.TrimSpace(mark)
	if i := strings.IndexByte(s, ' '); i > 0 {
		s = s[:i]
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0
	}
	return d
}
