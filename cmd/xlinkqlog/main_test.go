package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/obs"
)

// writeTrace replays one corpus scenario with a tracer and writes the
// NDJSON stream to dir, returning the path.
func writeTrace(t *testing.T, dir, scenario string) string {
	t.Helper()
	sc, ok := chaos.ScenarioByName(scenario)
	if !ok {
		t.Fatalf("scenario %q missing", scenario)
	}
	sc.Tracer = obs.NewTrace(sc.Name)
	chaos.Run(sc)
	path := filepath.Join(dir, scenario+".ndjson")
	if err := os.WriteFile(path, sc.Tracer.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"no args", nil, 2},
		{"unknown flag", []string{"-bogus"}, 2},
		{"stray args", []string{"a.ndjson", "b.ndjson"}, 2},
		{"unreadable file", []string{"/nonexistent/trace.ndjson"}, 1},
		{"fleet without files", []string{"-fleet"}, 2},
		{"fleet unreadable file", []string{"-fleet", "/nonexistent/trace.ndjson"}, 1},
		{"unknown scenario", []string{"-run", "no-such-scenario"}, 1},
		{"list", []string{"-list"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tc.args, &stdout, &stderr); got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstderr: %s", tc.args, got, tc.want, stderr.String())
			}
			if tc.want == 2 && !strings.Contains(stderr.String(), "Usage") &&
				!strings.Contains(stderr.String(), "-fleet") && !strings.Contains(stderr.String(), "flag") {
				t.Errorf("usage-error exit without usage text:\n%s", stderr.String())
			}
		})
	}
}

func TestRunSummarizeFile(t *testing.T) {
	dir := t.TempDir()
	path := writeTrace(t, dir, "burst-loss")
	var stdout, stderr bytes.Buffer
	if got := run([]string{path}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	for _, want := range []string{"== event counts ==", "== path timelines ==", "conn:scorecard"} {
		if !strings.Contains(stdout.String(), want) {
			t.Errorf("summary missing %q", want)
		}
	}
}

func TestRunFleetAggregation(t *testing.T) {
	dir := t.TempDir()
	paths := []string{
		writeTrace(t, dir, "burst-loss"),
		writeTrace(t, dir, "interface-death"),
	}
	var stdout, stderr bytes.Buffer
	args := append([]string{"-fleet", "-metrics"}, paths...)
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "2 sessions from 2 of 2 traces") {
		t.Errorf("fleet header wrong:\n%s", out)
	}
	for _, want := range []string{"completed:", "lane bytes:", "paths:", "== metrics ==", "xlink_sessions_total 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet rollup missing %q:\n%s", want, out)
		}
	}
}
