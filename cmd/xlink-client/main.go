// Command xlink-client is the live demo client: it opens a multi-path
// connection to xlink-server over two local UDP sockets (standing in for
// Wi-Fi and LTE interfaces), fetches the demo video in chunked range
// requests, simulates playback, and prints QoE metrics.
//
//	xlink-client [-server 127.0.0.1:4242] [-size 8388608] [-chunk 524288]
package main

import (
	"flag"
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"repro/internal/video"
	"repro/xlink"
)

func main() {
	serverAddr := flag.String("server", "127.0.0.1:4242", "server UDP address")
	size := flag.Uint64("size", 8<<20, "video size in bytes (must match server)")
	chunk := flag.Uint64("chunk", 512<<10, "range request size")
	flag.Parse()

	v := video.Video{
		ID: "demo", Size: *size, BitrateBps: 2_500_000, FPS: 30,
		FirstFrameSize: 128 << 10,
	}
	player := video.NewPlayer(v, video.DefaultPlayerConfig())
	start := time.Now()

	type chunkState struct {
		offset, length, got uint64
		sentAt              time.Time
	}
	chunks := map[uint64]*chunkState{}
	var nextOffset uint64
	var delivered atomic.Uint64
	done := make(chan struct{})

	// Callbacks run on the endpoint's read-loop goroutine and can fire
	// before Dial returns; ready orders the client variable write below
	// before the closures read it.
	ready := make(chan struct{})

	var client *xlink.Endpoint
	var issue func()
	issue = func() {
		outstanding := 0
		for _, c := range chunks {
			if c.got < c.length {
				outstanding++
			}
		}
		for outstanding < 2 && nextOffset < v.Size {
			length := *chunk
			if nextOffset+length > v.Size {
				length = v.Size - nextOffset
			}
			s := client.OpenStream()
			chunks[s.ID()] = &chunkState{offset: nextOffset, length: length, sentAt: time.Now()}
			s.Write([]byte(video.FormatRequest(video.Request{ID: v.ID, Offset: nextOffset, Length: length})))
			s.Close()
			nextOffset += length
			outstanding++
		}
	}

	var err error
	client, err = xlink.Dial(*serverAddr,
		[]string{"127.0.0.1:0", "127.0.0.1:0"},
		[]xlink.Technology{xlink.TechWiFi, xlink.TechLTE},
		xlink.LiveConfig{
			Scheme:      xlink.SchemeXLINK,
			QoEProvider: player.QoESignal,
			OnHandshakeDone: func(now time.Duration) {
				<-ready
				log.Printf("handshake done in %v", time.Since(start))
				issue()
			},
			OnStreamData: func(now time.Duration, s *xlink.RecvStream, data []byte, fin bool) {
				<-ready
				c := chunks[s.ID()]
				if c == nil {
					return
				}
				c.got += uint64(len(data))
				delivered.Add(uint64(len(data)))
				player.OnData(time.Since(start), uint64(len(data)))
				if fin {
					log.Printf("chunk [%d,%d) done in %v", c.offset, c.offset+c.length, time.Since(c.sentAt))
					issue()
					if delivered.Load() >= v.Size {
						close(done)
					}
				}
			},
		})
	if err != nil {
		log.Fatal(err)
	}
	close(ready)
	defer client.Close()

	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		log.Fatalf("timed out with %d of %d bytes", delivered.Load(), v.Size)
	}
	m := player.Metrics(time.Since(start))
	st := client.Stats()
	fmt.Printf("downloaded %d bytes in %v\n", delivered.Load(), time.Since(start))
	fmt.Printf("first-frame latency: %v   startup: %v\n", m.FirstFrameLatency, m.StartupLatency)
	fmt.Printf("rebuffers: %d (%.0f ms)   duplicate bytes received: %d\n",
		m.RebufferCount, m.RebufferTime.Seconds()*1000, st.DuplicateBytesRecv)
}
