// Command xlink-server is the live demo media server: it listens on a UDP
// address and answers range requests of the form "GET <id> <offset> <len>\n"
// with synthesized video content, tagging the first video frame for
// frame-priority re-injection.
//
//	xlink-server [-listen 127.0.0.1:4242] [-size 8388608] [-firstframe 131072]
//
// Pair it with xlink-client.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/video"
	"repro/xlink"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:4242", "UDP listen address")
	size := flag.Uint64("size", 8<<20, "video size in bytes")
	firstFrame := flag.Uint64("firstframe", 128<<10, "first video frame size in bytes")
	flag.Parse()

	v := video.Video{
		ID: "demo", Size: *size, BitrateBps: 2_500_000, FPS: 30,
		FirstFrameSize: *firstFrame,
	}

	var server *xlink.Endpoint
	pending := map[uint64]*strings.Builder{}
	// The callback runs on the endpoint's read-loop goroutine and can fire
	// before Listen returns; ready orders the server variable write below
	// before the closure reads it.
	ready := make(chan struct{})
	var err error
	server, err = xlink.Listen(*listen, xlink.LiveConfig{
		Scheme: xlink.SchemeXLINK,
		OnStreamData: func(now time.Duration, s *xlink.RecvStream, data []byte, fin bool) {
			<-ready
			b := pending[s.ID()]
			if b == nil {
				if len(data) == 0 && fin {
					return // trailing FIN on a stream whose request was already served
				}
				b = &strings.Builder{}
				pending[s.ID()] = b
			}
			b.Write(data)
			if !strings.Contains(b.String(), "\n") && !fin {
				return
			}
			req, err := video.ParseRequest(b.String())
			delete(pending, s.ID())
			if err != nil {
				log.Printf("bad request on stream %d: %v", s.ID(), err)
				return
			}
			end := req.Offset + req.Length
			if end > v.Size || req.Length == 0 {
				end = v.Size
			}
			ss := server.StreamFor(s.ID())
			payload := video.SynthesizeContent(v.ID, req.Offset, end-req.Offset)
			if req.Offset < v.FirstFrameSize {
				ff := v.FirstFrameSize - req.Offset
				if ff > uint64(len(payload)) {
					ff = uint64(len(payload))
				}
				ss.WriteFrame(payload[:ff], 0)
				payload = payload[ff:]
			}
			if len(payload) > 0 {
				ss.Write(payload)
			}
			ss.Close()
			log.Printf("served %s [%d,%d) on stream %d", req.ID, req.Offset, end, s.ID())
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	close(ready)
	defer server.Close()
	fmt.Printf("xlink-server: listening on %s, serving %q (%d bytes)\n",
		server.LocalAddrs()[0], v.ID, v.Size)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	st := server.Stats()
	fmt.Printf("\nserved: %d packets, %d bytes (%.2f%% re-injected)\n",
		st.SentPackets, st.SentBytes, st.RedundancyRatio()*100)
}
