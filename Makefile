# Development gate for the XLINK reproduction. `make check` is the full
# pre-commit pipeline; individual targets are broken out for iteration.

GO ?= go
FUZZTIME ?= 10s

.PHONY: build vet xlinkvet selftest test debugtest race fuzz chaos trace bench benchdiff check

build:
	$(GO) build ./...

# Everything static in one shot: standard go vet, the xlinkvet fixture
# self-test, and the full-tree xlinkvet sweep (all ten rules, including
# the interprocedural lockheld/guardedby/taintsize families and the
# escape-analysis hotalloc/loan buffer-ownership rules).
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/xlinkvet -selftest
	$(GO) run ./cmd/xlinkvet ./...

# Repo-specific static analysis: determinism, wire error handling,
# panic-free parse paths, ordered map iteration, lock discipline,
# guarded-by field access, wire-length taint, hot-path allocation
# freedom, and loaned-buffer retention. See DESIGN.md §10 and §12.
xlinkvet:
	$(GO) run ./cmd/xlinkvet ./...

# Prove every xlinkvet rule still fires on its committed violation fixture.
selftest:
	$(GO) run ./cmd/xlinkvet -selftest

test:
	$(GO) test ./...

# Same suite with runtime invariant assertions compiled in.
debugtest:
	$(GO) test -tags xlinkdebug ./...

race:
	$(GO) test -race ./...

# Short fuzz smoke on each wire-format target (committed corpora under
# internal/wire/testdata/fuzz/ run as regression inputs in plain `go test`).
fuzz:
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzParseVarint -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzParseHeader -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire/ -run '^$$' -fuzz FuzzParseFrame -fuzztime $(FUZZTIME)
	$(GO) test ./internal/obs/ -run '^$$' -fuzz FuzzParseTrace -fuzztime $(FUZZTIME)

# Chaos suite: the scripted fault-injection corpus plus the connection
# lifecycle tests, with runtime assertions and the race detector on.
# See DESIGN.md ("Failure handling").
chaos:
	$(GO) test -race -tags xlinkdebug -count=1 ./internal/chaos/ \
		-run 'TestChaos'
	$(GO) test -race -tags xlinkdebug -count=1 ./internal/transport/ \
		-run 'TestHandshakeTimeoutTerminal|TestIdleTimeoutTerminal|TestCloseLifecycleStates|TestKeepAliveSustainsIdleConnection|TestPTOGiveUpAbandonsDeadPath|TestEvacuatedPathLateAcksHarmless'

# Replay one chaos scenario with the qlog-style tracer attached and print
# the summary views (per-path timelines, Alg. 1 decision table,
# loss/rebuffer correlation). `go run ./cmd/xlinkqlog -list` enumerates
# scenarios; see DESIGN.md §9.
SCENARIO ?= interface-death
trace:
	$(GO) run ./cmd/xlinkqlog -run $(SCENARIO) -summary

# Run the per-layer benchmark suite and record a labeled snapshot into
# BENCH_5.json (ns/op, B/op, allocs/op). LABEL=before captures a baseline;
# the default label is "after". See DESIGN.md §11.
LABEL ?= after
bench:
	./scripts/bench.sh $(LABEL)

# Compare the committed before/after snapshots; fails on >10% ns/op
# regression — or any allocs/op regression at all — on any benchmark
# present in both. The second comparison pins the batched-I/O work:
# BENCH_10.json carries BENCH_5's before/after plus the "batched" snapshot
# recorded with the batch plane on. Per-packet benches must be alloc-flat
# (RoundTrip holds its 22-alloc budget exactly; wire/crypto stay at zero),
# but the full-scenario macro benches legitimately gain <1% from one-time
# per-connection batch setup (send-ring buffers, per-path pend slices), so
# the allocs gate here is 1% — the per-packet zero is enforced by the
# TestAllocGateBatch* tests in check.sh, where it belongs. ns/op is left
# loose (75%) because snapshots come from different sessions of the box.
benchdiff:
	$(GO) run ./cmd/xlink-benchdiff -file BENCH_5.json -old before -new after -max-alloc-regress 0
	$(GO) run ./cmd/xlink-benchdiff -file BENCH_10.json -old after -new batched -max-regress 75 -max-alloc-regress 1

check:
	./scripts/check.sh
