#!/bin/sh
# Full verification gate for the XLINK reproduction: build, go vet, the
# repo-specific xlinkvet analyzer (self-test first, then the real tree —
# including the interprocedural lockheld/guardedby/taintsize rules, so a
# new unjustified suppression or lock-discipline violation fails here),
# the test suite in release and xlinkdebug-assertion modes, the race
# detector, and a short fuzz smoke on every wire-format target.
#
# Run from the repository root: ./scripts/check.sh  (or `make check`).
set -eu

FUZZTIME="${FUZZTIME:-10s}"

step() {
	echo "==> $*"
	"$@"
}

step go build ./...
step go vet ./...
step go run ./cmd/xlinkvet -selftest
step go run ./cmd/xlinkvet ./...
step go test ./...
step go test -tags xlinkdebug ./...
step go test -race ./...
# Chaos smoke: the fault-injection corpus under assertions + race detector
# (plain `go test ./...` above already ran it once without either).
step go test -race -tags xlinkdebug -count=1 ./internal/chaos/
# Trace determinism: the same (scenario, seed) must reproduce the committed
# golden NDJSON trace byte for byte (-count=1 defeats the test cache so the
# gate re-runs even when nothing changed).
step go test -count=1 ./internal/chaos/ -run TestGoldenTrace
# Allocation gates (DESIGN.md §11): warm hot paths must hold their alloc/op
# budgets — zero for sim timers, crypto seal/open and rangeset updates, a
# fixed ceiling for the transport round trip. -count=1 so the gates really
# re-measure instead of replaying a cached pass.
step go test -count=1 -run 'TestAllocGate' ./internal/sim/ ./internal/crypto/ ./internal/rangeset/ ./internal/transport/
# Benchmark smoke: every benchmark must still run (one iteration — this
# checks the harness, not performance; `make bench` measures for real).
step go test -run '^$' -bench . -benchtime 1x ./internal/wire/ ./internal/crypto/ ./internal/rangeset/ ./internal/sim/ ./internal/transport/ ./internal/chaos/
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseVarint -fuzztime "$FUZZTIME"
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseHeader -fuzztime "$FUZZTIME"
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseFrame -fuzztime "$FUZZTIME"

echo "check: all gates passed"
