#!/bin/sh
# Full verification gate for the XLINK reproduction: build, go vet, the
# repo-specific xlinkvet analyzer (self-test first, then the real tree —
# including the interprocedural lockheld/guardedby/taintsize rules, the
# escape-analysis hotalloc/loan buffer-ownership rules, and the
# concurrency-lifecycle goleak/chandir/connstate rules, so a new heap
# allocation on a hot path, a retained loaned buffer, a leaked goroutine,
# or an out-of-order lifecycle transition fails here, before
# any alloc-gate test runs), the test suite in release and
# xlinkdebug-assertion modes, the race detector, an allocs/op regression
# gate against the committed benchmark snapshot, and a short fuzz smoke on
# every wire-format target.
#
# Run from the repository root: ./scripts/check.sh  (or `make check`).
set -eu

FUZZTIME="${FUZZTIME:-10s}"

step() {
	echo "==> $*"
	"$@"
}

step go build ./...
step go vet ./...
step go run ./cmd/xlinkvet -selftest
# The analyzer's own suite under the race detector: the engine summarizes
# packages in parallel, and the new selftests (goleak/chandir/connstate/
# loaderr fixtures, explain table, JSON goldens) must hold there too.
# -count=1 so the gate re-checks instead of replaying a cached pass.
step go test -race -count=1 ./internal/vet/ ./cmd/xlinkvet/
# Whole-tree sweep under a wall-clock budget: the concurrency-lifecycle
# engine grew the pass, and it must stay far too cheap to be worth
# skipping. 30 s is ~10x the current cost.
echo "==> go run ./cmd/xlinkvet ./... (30s budget)"
VET_START="$(date +%s)"
go run ./cmd/xlinkvet ./...
VET_ELAPSED=$(( $(date +%s) - VET_START ))
echo "xlinkvet sweep: ${VET_ELAPSED}s"
if [ "$VET_ELAPSED" -ge 30 ]; then
	echo "xlinkvet sweep exceeded the 30s budget" >&2
	exit 1
fi
step go test ./...
step go test -tags xlinkdebug ./...
step go test -race ./...
# Chaos smoke: the fault-injection corpus under assertions + race detector
# (plain `go test ./...` above already ran it once without either).
step go test -race -tags xlinkdebug -count=1 ./internal/chaos/
# Trace determinism: the same (scenario, seed) must reproduce the committed
# golden NDJSON trace byte for byte (-count=1 defeats the test cache so the
# gate re-runs even when nothing changed).
step go test -count=1 ./internal/chaos/ -run TestGoldenTrace
# Sharded live event loop under the race detector (DESIGN.md §16): socket
# readers posting to shard channels, shard goroutines batching into the
# transports, foreign-goroutine writers and endpoint/group shutdown all
# interleaving over real UDP.
step go test -race -count=1 ./xlink/ -run TestLiveShardedEventLoop
# Allocation gates (DESIGN.md §11): warm hot paths must hold their alloc/op
# budgets — zero for sim timers, crypto seal/open, rangeset updates, the
# telemetry record path (counters/gauges/histograms and the flight-recorder
# ring, DESIGN.md §14) and the send-side batch fill/flush (§16), a fixed
# ceiling for the transport round trip and the batched 16-packet receive.
# -count=1 so the gates really re-measure instead of replaying a cached pass.
step go test -count=1 -run 'TestAllocGate' ./internal/sim/ ./internal/crypto/ ./internal/rangeset/ ./internal/transport/ ./internal/obs/
# Benchmark smoke: every benchmark must still run (one iteration — this
# checks the harness, not performance; `make bench` measures for real).
step go test -run '^$' -bench . -benchtime 1x ./internal/wire/ ./internal/crypto/ ./internal/rangeset/ ./internal/sim/ ./internal/transport/ ./internal/chaos/
# Allocation regression gate (DESIGN.md §11/§12): re-measure the transport
# round-trip and chaos benchmarks and compare allocs/op against the
# committed BENCH_5.json "after" snapshot. ns/op is effectively ungated
# here (machine speeds vary), but allocs/op is deterministic at a fixed
# -benchtime, so the recorded allocation win stays pinned within a 15%
# tolerance. The hotalloc rule above catches new allocation *sites*
# statically; this catches count growth at existing justified sites.
echo "==> alloc regression gate (benchdiff -max-alloc-regress)"
BENCHTMP="$(mktemp)"
trap 'rm -f "$BENCHTMP"' EXIT
cp BENCH_5.json "$BENCHTMP"
go test -run '^$' -bench 'BenchmarkRoundTrip$|BenchmarkScenario$' -benchtime 200x -benchmem ./internal/transport/ ./internal/chaos/ |
	go run ./cmd/xlink-benchdiff -record -label ci -out "$BENCHTMP"
step go run ./cmd/xlink-benchdiff -file "$BENCHTMP" -old after -new ci -max-regress 1000000 -max-alloc-regress 15
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseVarint -fuzztime "$FUZZTIME"
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseHeader -fuzztime "$FUZZTIME"
step go test ./internal/wire/ -run '^$' -fuzz 'FuzzParseFrame$' -fuzztime "$FUZZTIME"
step go test ./internal/wire/ -run '^$' -fuzz FuzzParseFECFrame -fuzztime "$FUZZTIME"
step go test ./internal/obs/ -run '^$' -fuzz FuzzParseTrace -fuzztime "$FUZZTIME"

echo "check: all gates passed"
