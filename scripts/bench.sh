#!/usr/bin/env bash
# Run the benchmark suite and record a labeled snapshot into BENCH_5.json.
#
# Usage:
#   scripts/bench.sh [label]          # default label: after
#   BENCHTIME=2s scripts/bench.sh before
#
# The raw `go test -bench` output is kept in bench-<label>.txt (gitignored);
# the parsed snapshot is merged into BENCH_5.json by xlink-benchdiff.
set -eu
cd "$(dirname "$0")/.."

LABEL="${1:-after}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${BENCH_OUT:-BENCH_5.json}"
RAW="bench-${LABEL}.txt"

# The micro + integration benchmark packages, cheapest first. The root
# package holds the paper-figure benchmarks (full experiment runs) and is
# driven with -benchtime=1x regardless of BENCHTIME: one run per figure is
# the meaningful unit, and KeyMetrics are deterministic per seed.
MICRO_PKGS="./internal/wire ./internal/crypto ./internal/rangeset ./internal/sim ./internal/transport ./internal/chaos ./xlink"

echo "== bench: micro packages (benchtime=${BENCHTIME}) =="
go test -run '^$' -bench . -benchmem -benchtime "${BENCHTIME}" ${MICRO_PKGS} | tee "${RAW}"

echo "== bench: paper-figure benchmarks (benchtime=1x) =="
go test -run '^$' -bench 'BenchmarkFig1_VanillaMPDynamics$|BenchmarkFig11_Table3_XlinkABTest$' \
	-benchmem -benchtime 1x . | tee -a "${RAW}"

echo "== record snapshot '${LABEL}' into ${OUT} =="
go run ./cmd/xlink-benchdiff -record -label "${LABEL}" -in "${RAW}" -out "${OUT}"
