// Quickstart: play one short video over an emulated two-path network with
// XLINK and with single-path QUIC, and compare the results.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/xlink"
)

func main() {
	video := xlink.Video{
		ID:             "quickstart",
		Size:           3 << 20, // 3 MiB
		BitrateBps:     2_000_000,
		FPS:            30,
		FirstFrameSize: 96 << 10,
	}
	// A Wi-Fi path and an LTE path with realistic delays.
	paths := xlink.TwoPathNetwork(12, 8, 32*time.Millisecond, 88*time.Millisecond)

	for _, scheme := range []xlink.Scheme{xlink.SchemeSinglePath, xlink.SchemeXLINK} {
		res, err := xlink.RunEmulatedSession(xlink.SessionConfig{
			Scheme: scheme,
			Paths:  paths,
			Video:  video,
			Seed:   1,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s download=%v first-frame=%v startup=%v rebuffers=%d redundancy=%.2f%%\n",
			scheme, res.DownloadTime.Round(time.Millisecond),
			res.Metrics.FirstFrameLatency.Round(time.Millisecond),
			res.Metrics.StartupLatency.Round(time.Millisecond),
			res.Metrics.RebufferCount, res.Redundancy*100)
	}
}
