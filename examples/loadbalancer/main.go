// Loadbalancer: a QUIC-LB-style deployment (Sec 6) — multi-homed clients
// connect through a balancer to two backend media servers. Real servers
// embed a server ID in the connection IDs they issue, so every path of a
// connection is routed to the backend that owns it; client-chosen Initial
// CIDs are routed by consistent hashing.
//
//	go run ./examples/loadbalancer
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/lb"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wire"
)

func main() {
	loop := sim.NewLoop()
	env := transport.SimEnv{Loop: loop}
	params := wire.DefaultTransportParams()
	params.EnableMultipath = true

	pktCount := map[byte]int{}
	var totalByID, totalByHash uint64

	for c := 0; c < 4; c++ {
		clientName := fmt.Sprintf("client-%d", c)
		nw := netem.NewNetwork(loop, sim.NewRNG(int64(c+1)), []netem.PathConfig{
			{Name: "wifi", Tech: trace.TechWiFi, Up: trace.ConstantRate("w", 20, time.Second), OneWayDelay: 10 * time.Millisecond},
			{Name: "lte", Tech: trace.TechLTE, Up: trace.ConstantRate("l", 15, time.Second), OneWayDelay: 30 * time.Millisecond},
		})
		client := transport.NewConn(env, transport.SenderFunc(nw.ClientSend),
			transport.Config{IsClient: true, Params: params, Seed: int64(c + 10)})
		client.AddInterface(0, trace.TechWiFi)
		client.AddInterface(1, trace.TechLTE)

		// Each client's traffic flows through its own balancer instance
		// (they'd share one in production; per-client here keeps the demo
		// self-contained), fronting the same two logical backends.
		router := lb.NewRouter(8)
		for _, id := range []byte{1, 2} {
			id := id
			srv := transport.NewConn(env, transport.SenderFunc(nw.ServerSend),
				transport.Config{Params: params, Seed: int64(c*7 + int(id)), ServerID: id})
			srv.SetOnStreamOpen(func(now time.Duration, rs *transport.RecvStream) {
				ss := srv.Stream(rs.ID())
				ss.Write(make([]byte, 256<<10))
				ss.Close()
			})
			router.AddBackend(id, lb.BackendFunc(func(netIdx int, data []byte) {
				pktCount[id]++
				srv.HandleDatagram(loop.Now(), netIdx, data)
			}))
		}

		nw.Attach(
			func(now time.Duration, pathIdx int, data []byte) {
				client.HandleDatagram(now, pathIdx, data)
			},
			func(now time.Duration, pathIdx int, data []byte) {
				router.Forward(pathIdx, data)
			})

		client.SetOnHandshakeDone(func(now time.Duration) {
			s := client.OpenStream()
			s.Write([]byte("GET"))
			s.Close()
		})
		received := 0
		client.SetOnStreamData(func(now time.Duration, rs *transport.RecvStream, data []byte, fin bool) {
			received += len(data)
			if fin {
				fmt.Printf("%s: fetched %d KB over %d paths at t=%v\n",
					clientName, received/1024, len(client.Paths()), now.Round(time.Millisecond))
			}
		})
		if err := client.Start(); err != nil {
			log.Fatal(err)
		}
		// Collect router stats after the run via closure capture.
		defer func(r *lb.Router) {
			totalByID += r.RoutedByID
			totalByHash += r.RoutedByHash
		}(router)
	}

	loop.RunUntil(10 * time.Second)
	fmt.Println()
	for id, n := range pktCount {
		fmt.Printf("backend %d handled %d packets\n", id, n)
	}
	fmt.Println("\nevery connection's paths landed on the backend that issued its CIDs;")
	fmt.Println("Initials were hash-routed, everything else routed by the CID server ID.")
}
