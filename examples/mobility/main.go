// Mobility: the Fig 13 scenario in miniature — a 4 MB download on a
// high-speed-rail trace pair (cellular with tunnel outages + flaky onboard
// Wi-Fi) under SP, vanilla-MP, MPTCP, connection migration, and XLINK.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"time"

	"repro/internal/cc"
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/mptcp"
	"repro/internal/netem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/transport"
)

const size = 4 << 20

func paths(pair trace.MobilityPair) []netem.PathConfig {
	return []netem.PathConfig{
		{Name: "cellular", Tech: trace.TechLTE, Up: pair.Cellular,
			OneWayDelay: trace.DelayLTE.MedianRTT / 2},
		{Name: "wifi", Tech: trace.TechWiFi, Up: pair.WiFi,
			OneWayDelay: trace.DelayWiFi.MedianRTT / 2},
	}
}

func runScheme(scheme core.Scheme, pair trace.MobilityPair, seed int64) time.Duration {
	x := core.New(scheme, core.Options{})
	loop := sim.NewLoop()
	tp := transport.NewPair(loop, sim.NewRNG(seed), paths(pair), x.ClientConfig(seed), x.ServerConfig(seed+1))
	var done time.Duration
	tp.Server.SetOnStreamOpen(func(now time.Duration, rs *transport.RecvStream) {
		ss := tp.Server.Stream(rs.ID())
		ss.Write(make([]byte, size))
		ss.Close()
	})
	tp.Client.SetOnStreamData(func(now time.Duration, rs *transport.RecvStream, data []byte, fin bool) {
		if fin {
			done = now
		}
	})
	tp.Client.SetOnHandshakeDone(func(now time.Duration) {
		s := tp.Client.OpenStream()
		s.Write([]byte("GET"))
		s.Close()
	})
	if tp.Start() != nil {
		return 0
	}
	tp.RunUntil(120 * time.Second)
	return done
}

func runCM(pair trace.MobilityPair, seed int64) time.Duration {
	loop := sim.NewLoop()
	x := core.New(core.SchemeSinglePath, core.Options{})
	tp := transport.NewPair(loop, sim.NewRNG(seed), paths(pair), x.ClientConfig(seed), x.ServerConfig(seed+1))
	ctrl := cm.NewController(loop, tp.Client, cm.DefaultConfig(), []cm.Interface{
		{NetIdx: 0, Tech: trace.TechLTE}, {NetIdx: 1, Tech: trace.TechWiFi},
	})
	var done time.Duration
	tp.Server.SetOnStreamOpen(func(now time.Duration, rs *transport.RecvStream) {
		ss := tp.Server.Stream(rs.ID())
		ss.Write(make([]byte, size))
		ss.Close()
	})
	tp.Client.SetOnStreamData(func(now time.Duration, rs *transport.RecvStream, data []byte, fin bool) {
		if fin {
			done = now
			ctrl.Stop()
		}
	})
	tp.Client.SetOnHandshakeDone(func(now time.Duration) {
		ctrl.Start()
		s := tp.Client.OpenStream()
		s.Write([]byte("GET"))
		s.Close()
	})
	if tp.Start() != nil {
		return 0
	}
	tp.RunUntil(120 * time.Second)
	return done
}

func main() {
	pair := trace.ExtremeMobilitySet(sim.NewRNG(99), 2, 90*time.Second)[1] // an HSR pair
	fmt.Printf("trace pair: %s (cellular %.1f Mbps mean, wifi %.1f Mbps mean)\n\n",
		pair.Name, pair.Cellular.MeanThroughputBps()/1e6, pair.WiFi.MeanThroughputBps()/1e6)

	report := func(name string, d time.Duration) {
		if d == 0 {
			fmt.Printf("%-11s did not finish\n", name)
			return
		}
		fmt.Printf("%-11s %6.2fs\n", name, d.Seconds())
	}
	report("SP", runScheme(core.SchemeSinglePath, pair, 5))
	report("CM", runCM(pair, 5))
	loop := sim.NewLoop()
	nw := netem.NewNetwork(loop, sim.NewRNG(5), paths(pair))
	mptcpDone, ok := mptcp.Download(loop, nw, size, cc.AlgCubic, 120*time.Second, nil)
	if !ok {
		mptcpDone = 0
	}
	report("MPTCP", mptcpDone)
	report("vanilla-MP", runScheme(core.SchemeVanillaMP, pair, 5))
	report("XLINK", runScheme(core.SchemeXLINK, pair, 5))
	fmt.Println("\nexpected ordering (Fig 13): XLINK fastest, SP slowest.")
}
