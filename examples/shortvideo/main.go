// Shortvideo: the Fig 6 scenario end to end — a short video played over a
// fast-varying Wi-Fi path (with a deep outage) plus an LTE path, under
// three schemes: vanilla multi-path, re-injection without QoE control, and
// full XLINK. Prints the buffer-level and re-injection dynamics plus the
// session QoE so the trade-off (smoothness vs redundant traffic) is
// visible.
//
//	go run ./examples/shortvideo
package main

import (
	"fmt"
	"log"
	"time"

	"repro/xlink"
)

func main() {
	video := xlink.Video{
		ID:             "shorts-1080p",
		Size:           8 << 20,
		BitrateBps:     4_000_000,
		FPS:            30,
		FirstFrameSize: 128 << 10,
	}
	schemes := []xlink.Scheme{xlink.SchemeVanillaMP, xlink.SchemeReinjNoQoE, xlink.SchemeXLINK}
	for _, scheme := range schemes {
		res, err := xlink.RunEmulatedSession(xlink.SessionConfig{
			Scheme:   scheme,
			Paths:    xlink.WalkingTracePaths(42, 20*time.Second),
			Video:    video,
			Seed:     42,
			Deadline: 60 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("=== %s ===\n", scheme)
		fmt.Printf("  download time:    %v\n", res.DownloadTime.Round(time.Millisecond))
		fmt.Printf("  rebuffers:        %d (total %v)\n",
			res.Metrics.RebufferCount, res.Metrics.RebufferTime.Round(time.Millisecond))
		fmt.Printf("  redundant bytes:  %d (%.2f%% of traffic)\n",
			res.ServerStats.ReinjectedBytesSent, res.Redundancy*100)
		fmt.Printf("  buffer level every second (KB):\n    ")
		buf := res.BufferSeries.Resample(time.Second, 12*time.Second, 0)
		for _, v := range buf.Values {
			fmt.Printf("%7.0f", v/1024)
		}
		fmt.Println()
	}
	fmt.Println("\nexpected: vanilla-MP stalls during the Wi-Fi outage;")
	fmt.Println("re-injection w/o QoE control avoids stalls but wastes bytes;")
	fmt.Println("XLINK avoids stalls at a fraction of the redundancy.")
}
