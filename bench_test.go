// Package repro's root benchmark harness: one testing.B benchmark per
// table and figure in the paper's evaluation. Each benchmark runs the
// corresponding experiment (at quick scale so `go test -bench=.` stays
// tractable) and reports its headline numbers as custom benchmark metrics.
//
// For the full-scale regeneration used in EXPERIMENTS.md, run:
//
//	go run ./cmd/xlink-bench -scale full
package repro

import (
	"testing"

	"repro/internal/experiments"
)

const benchSeed = 20210823

// reportMetrics attaches an experiment's key numbers to the benchmark.
func reportMetrics(b *testing.B, r experiments.Report) {
	b.Helper()
	for name, v := range r.KeyMetrics {
		b.ReportMetric(v, name)
	}
}

// BenchmarkFig1_VanillaMPDynamics regenerates Fig 1a/1b: vanilla-MP
// in-flight/cwnd vs capacity on fast-varying campus-walk traces.
func BenchmarkFig1_VanillaMPDynamics(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1Dynamics(benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig1c_Table1_VanillaABTest regenerates Fig 1c and Table 1: the
// vanilla-MP vs SP deployment study (RCT and rebuffer-rate reduction).
func BenchmarkFig1c_Table1_VanillaABTest(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig1cTable1(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkSec32_PathDelays regenerates the Sec 3.2 path-delay ratios.
func BenchmarkSec32_PathDelays(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Sec32PathDelays(benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkTable4_CrossISP regenerates the Appendix A inflation matrix.
func BenchmarkTable4_CrossISP(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Table4CrossISP()
	}
	reportMetrics(b, r)
}

// BenchmarkFig6_ReinjectionDynamics regenerates Fig 6: buffer level and
// re-injected bytes under the three control regimes.
func BenchmarkFig6_ReinjectionDynamics(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig6Reinjection(benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig7_PrimaryPath regenerates Fig 7: first-frame delivery vs
// primary path choice.
func BenchmarkFig7_PrimaryPath(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig7PrimaryPath(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig8_AckPath regenerates Fig 8: ACK_MP return-path policy vs
// RTT ratio.
func BenchmarkFig8_AckPath(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig8AckPath(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig10_Table2_Thresholds regenerates the Sec 7.1 threshold
// sweep: buffer levels vs redundancy cost.
func BenchmarkFig10_Table2_Thresholds(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig10Table2(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig11_Table3_XlinkABTest regenerates the headline A/B test:
// XLINK vs SP RCT and rebuffer rate.
func BenchmarkFig11_Table3_XlinkABTest(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig11Table3(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig12_FirstFrame regenerates Fig 12: first-video-frame latency
// with/without acceleration.
func BenchmarkFig12_FirstFrame(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig12FirstFrame(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig13_ExtremeMobility regenerates Fig 13: SP/CM/MPTCP/
// vanilla-MP/XLINK download times on mobility traces.
func BenchmarkFig13_ExtremeMobility(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig13ExtremeMobility(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig14_Energy regenerates Fig 14: energy per bit vs throughput.
func BenchmarkFig14_Energy(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig14Energy(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkFig15_Traces regenerates the Appendix B example traces.
func BenchmarkFig15_Traces(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.Fig15Traces(benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkAblation_ReinjectionModes compares the Fig 4 re-injection
// placements (none/appending/stream/frame priority).
func BenchmarkAblation_ReinjectionModes(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationReinjectionModes(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkAblation_SingleThreshold compares double vs single vs always-on
// re-injection control.
func BenchmarkAblation_SingleThreshold(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationSingleThreshold(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkAblation_CC compares Cubic vs NewReno under the XLINK scheduler.
func BenchmarkAblation_CC(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationCC(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}

// BenchmarkAblation_DeltaT compares the play-time-left estimators.
func BenchmarkAblation_DeltaT(b *testing.B) {
	var r experiments.Report
	for i := 0; i < b.N; i++ {
		r = experiments.AblationDeltaT(experiments.QuickScale(), benchSeed)
	}
	reportMetrics(b, r)
}
